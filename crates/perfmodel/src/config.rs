//! Parallelization configurations and NVS-domain placements (the paper's
//! design-space coordinates).

use collectives::Algorithm;
use serde::{Deserialize, Serialize};
use txmodel::TransformerConfig;

/// Tensor-parallel strategy (paper Tables I, II, A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TpStrategy {
    /// 1D tensor parallelism (Megatron-style, Table I). `n2` must be 1.
    OneD,
    /// 2D tensor parallelism / context parallelism (Table II): `l` is
    /// additionally split over `n2`; weights replicated across `n2`.
    TwoD,
    /// 2D tensor parallelism with SUMMA distributed matmuls (Table A2):
    /// no replicated weights; broadcast-based panel algorithm with `nb`
    /// panels per GEMM.
    Summa,
}

impl TpStrategy {
    /// Name used in figure legends.
    pub fn name(self) -> &'static str {
        match self {
            TpStrategy::OneD => "1D TP",
            TpStrategy::TwoD => "2D TP",
            TpStrategy::Summa => "2D TP SUMMA",
        }
    }

    /// All strategies, in paper order.
    pub const ALL: [TpStrategy; 3] = [TpStrategy::OneD, TpStrategy::TwoD, TpStrategy::Summa];
}

/// A complete parallelization configuration: the 4D GPU grid
/// `n = n1·n2·np·nd`, the microbatch size `bm`, and (for SUMMA) the panel
/// count `nb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Tensor-parallel strategy.
    pub strategy: TpStrategy,
    /// First tensor-parallel dimension (weights/heads/hidden).
    pub n1: u64,
    /// Second tensor-parallel dimension (sequence); 1 for 1D TP.
    pub n2: u64,
    /// Pipeline-parallel stages (must divide model depth).
    pub np: u64,
    /// Data-parallel replicas (must divide the global batch).
    pub nd: u64,
    /// Expert-parallel degree: `ep` GPUs *inside* the data-parallel
    /// dimension share one copy of each MoE layer's expert set (so the
    /// grid stays `n = n1·n2·np·nd` and `ep | nd`; each GPU hosts `E/ep`
    /// experts and expert gradients synchronize over the `nd/ep`
    /// replicas). Must be 1 for dense models; MoE requires 1D TP.
    pub ep: u64,
    /// Microbatch size in samples (must divide the local batch `b/nd`).
    pub microbatch: u64,
    /// SUMMA panel count per GEMM (ignored for non-SUMMA strategies).
    pub summa_panels: u64,
    /// Interleaved-pipeline virtual stages per GPU (paper Limitations:
    /// "interleaved pipeline schedules can drop bubble time further").
    /// 1 = the paper's non-interleaved 1F1B baseline; `v > 1` divides the
    /// bubble by `v` at the cost of `v×` point-to-point traffic and
    /// slightly higher activation memory. Must divide the layers per
    /// stage `d/np`.
    ///
    /// Contract relied on by the search's dominated-candidate
    /// elimination (`Planner::best_evaluation`): at `np == 1` this knob
    /// must not enter the timing model at all (no pipeline ⇒ no bubble,
    /// no p2p) and may only *increase* memory — which is why an
    /// `interleave > 1, np == 1` candidate can be dropped in favor of
    /// its `interleave = 1` twin without evaluating either. If a future
    /// change makes interleave affect single-stage timing or shrink
    /// memory, that prune (and `tests/pruning_exactness.rs`) must be
    /// revisited.
    pub interleave: u64,
    /// ZeRO-3-style weight/gradient sharding over the data-parallel group
    /// (paper Limitations: "weights (and gradients) can also be
    /// partitioned using DP at the cost of higher communication").
    /// Shrinks weight+gradient memory by `nd` but re-gathers weights
    /// every microbatch.
    pub zero3: bool,
    /// AllReduce algorithm policy (NCCL-style `NCCL_ALGO` selection) used
    /// when pricing the data-parallel gradient synchronization and any
    /// exposed AllReduce pattern. [`Algorithm::Auto`] — the default, and
    /// what NCCL's autotuner does — picks the fastest of
    /// ring/tree/hierarchical per collective; AG/RS/Broadcast/Reduce
    /// always run rings (as in NCCL).
    pub comm_algo: Algorithm,
}

impl ParallelConfig {
    /// Convenience constructor with `nb = 1`.
    pub fn new(strategy: TpStrategy, n1: u64, n2: u64, np: u64, nd: u64, microbatch: u64) -> Self {
        Self {
            strategy,
            n1,
            n2,
            np,
            nd,
            ep: 1,
            microbatch,
            summa_panels: 1,
            interleave: 1,
            zero3: false,
            comm_algo: Algorithm::Auto,
        }
    }

    /// Builder-style expert-parallel degree (MoE models; see
    /// [`Self::ep`]).
    pub fn with_ep(mut self, ep: u64) -> Self {
        self.ep = ep;
        self
    }

    /// Total GPUs `n = n1·n2·np·nd`.
    pub fn total_gpus(&self) -> u64 {
        self.n1 * self.n2 * self.np * self.nd
    }

    /// Total tensor-parallel degree `nt = n1·n2`.
    pub fn tensor_parallel(&self) -> u64 {
        self.n1 * self.n2
    }

    /// Number of microbatches `m = (b/nd)/bm` for a global batch `b`.
    pub fn num_microbatches(&self, global_batch: u64) -> u64 {
        global_batch / self.nd / self.microbatch
    }

    /// Checks every divisibility constraint of the paper's search (S3),
    /// extended with the expert-parallel constraints: parallel degrees
    /// must evenly divide the tensor dimensions they partition, `np | d`,
    /// `nd | b`, `bm | b/nd`, and for MoE models `ep | nd` and
    /// `ep | experts` (dense models require `ep = 1`).
    pub fn validate(&self, model: &TransformerConfig, global_batch: u64) -> Result<(), String> {
        let Self {
            strategy,
            n1,
            n2,
            np,
            nd,
            ep,
            microbatch,
            summa_panels,
            interleave,
            ..
        } = *self;
        if n1 == 0
            || n2 == 0
            || np == 0
            || nd == 0
            || ep == 0
            || microbatch == 0
            || summa_panels == 0
            || interleave == 0
        {
            return Err("all configuration factors must be positive".into());
        }
        if strategy == TpStrategy::OneD && n2 != 1 {
            return Err(format!("1D TP requires n2 = 1, got {n2}"));
        }
        match model.moe {
            None => {
                if ep != 1 {
                    return Err(format!(
                        "expert parallelism (ep = {ep}) requires an MoE model"
                    ));
                }
            }
            Some(moe) => {
                // Re-check the MoeConfig invariants here: `with_moe`
                // enforces them at construction, but the fields are
                // public and Deserialize, so a hand-edited or cached
                // JSON config can bypass the builder.
                if moe.experts < 2 {
                    return Err(format!(
                        "an MoE model needs at least 2 experts, got {}",
                        moe.experts
                    ));
                }
                if moe.top_k == 0 || moe.top_k > moe.experts {
                    return Err(format!(
                        "top_k ({}) must be in 1..=experts ({})",
                        moe.top_k, moe.experts
                    ));
                }
                if moe.capacity_pct < 100 {
                    return Err(format!(
                        "capacity factor below 1.0 ({}%) would drop tokens structurally",
                        moe.capacity_pct
                    ));
                }
                if strategy != TpStrategy::OneD {
                    return Err(format!(
                        "MoE models support 1D TP only, got {}",
                        strategy.name()
                    ));
                }
                if !nd.is_multiple_of(ep) {
                    return Err(format!("ep ({ep}) must divide nd ({nd})"));
                }
                if !moe.experts.is_multiple_of(ep) {
                    return Err(format!(
                        "ep ({ep}) must divide the expert count ({})",
                        moe.experts
                    ));
                }
            }
        }
        if !model.depth.is_multiple_of(np) {
            return Err(format!("np ({np}) must divide depth ({})", model.depth));
        }
        if !(model.depth / np).is_multiple_of(interleave) {
            return Err(format!(
                "interleave ({interleave}) must divide layers per stage ({})",
                model.depth / np
            ));
        }
        if !global_batch.is_multiple_of(nd) {
            return Err(format!(
                "nd ({nd}) must divide global batch ({global_batch})"
            ));
        }
        let local_batch = global_batch / nd;
        if !local_batch.is_multiple_of(microbatch) {
            return Err(format!(
                "microbatch ({microbatch}) must divide local batch ({local_batch})"
            ));
        }
        // Tensor-dimension divisibility. All strategies shard heads, embed
        // and hidden over n1; the sequence is sharded over nt = n1·n2 at
        // the residual stream.
        let checks: &[(u64, u64, &str)] = &[
            (model.heads, n1, "heads % n1"),
            (model.embed, n1, "embed % n1"),
            (model.hidden, n1, "hidden % n1"),
            (model.seq_len, n1 * n2, "seq_len % (n1*n2)"),
        ];
        for &(dim, div, what) in checks {
            if dim % div != 0 {
                return Err(format!("{what} != 0 (dim {dim}, divisor {div})"));
            }
        }
        if strategy != TpStrategy::OneD && !model.seq_len.is_multiple_of(n2) {
            return Err(format!("n2 ({n2}) must divide seq_len ({})", model.seq_len));
        }
        if strategy == TpStrategy::Summa {
            // SUMMA shards weight rows over n2 as well: W_Q (e/n2, e/n1),
            // W_1 (e/n2, f/n1), W_2 (f/n2, e/n1).
            if !model.embed.is_multiple_of(n2) || !model.hidden.is_multiple_of(n2) {
                return Err(format!(
                    "SUMMA requires n2 ({n2}) to divide embed and hidden"
                ));
            }
            if !model.embed.is_multiple_of(summa_panels) {
                return Err(format!(
                    "SUMMA panel count ({summa_panels}) must divide embed ({})",
                    model.embed
                ));
            }
        }
        Ok(())
    }
}

/// GPU-to-NVS-domain assignment (paper S3 "GPU assignment
/// configurations"): how many GPUs of each parallel group share one
/// NVSwitch domain. The product `v1·v2·vp·vd` is the number of GPUs
/// co-located per domain and may not exceed the domain size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// GPUs of the `n1` group per domain.
    pub v1: u64,
    /// GPUs of the `n2` group per domain.
    pub v2: u64,
    /// GPUs of the `np` group per domain.
    pub vp: u64,
    /// GPUs of the `nd` group per domain.
    pub vd: u64,
}

impl Placement {
    /// Everything on separate domains (worst case placement).
    pub fn trivial() -> Self {
        Self {
            v1: 1,
            v2: 1,
            vp: 1,
            vd: 1,
        }
    }

    /// GPUs co-located per NVS domain under this placement.
    pub fn gpus_per_domain(&self) -> u64 {
        self.v1 * self.v2 * self.vp * self.vd
    }

    /// Checks compatibility with a configuration and an NVS domain size.
    pub fn validate(&self, cfg: &ParallelConfig, nvs_size: u64) -> Result<(), String> {
        let pairs = [
            (self.v1, cfg.n1, "v1|n1"),
            (self.v2, cfg.n2, "v2|n2"),
            (self.vp, cfg.np, "vp|np"),
            (self.vd, cfg.nd, "vd|nd"),
        ];
        for (v, n, what) in pairs {
            if v == 0 {
                return Err("placement factors must be positive".into());
            }
            if n % v != 0 {
                return Err(format!("{what} violated ({v} does not divide {n})"));
            }
        }
        if self.gpus_per_domain() > nvs_size {
            return Err(format!(
                "placement packs {} GPUs into a domain of {nvs_size}",
                self.gpus_per_domain()
            ));
        }
        Ok(())
    }
}

impl std::fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (n1={}, n2={}, np={}, nd={}, bm={}",
            self.strategy.name(),
            self.n1,
            self.n2,
            self.np,
            self.nd,
            self.microbatch
        )?;
        if self.ep > 1 {
            write!(f, ", ep={}", self.ep)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmodel::gpt3_1t;

    fn gpt() -> TransformerConfig {
        gpt3_1t().config
    }

    #[test]
    fn fig1_config_d_is_valid() {
        // Fig. 1 config D: (m, nt, nd, np) = (128, 8, 32, 64) on 16384
        // GPUs at batch 4096, bm = 1.
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 1);
        assert_eq!(cfg.total_gpus(), 16384);
        cfg.validate(&gpt(), 4096).unwrap();
        assert_eq!(cfg.num_microbatches(4096), 128);
    }

    #[test]
    fn oned_rejects_n2() {
        let cfg = ParallelConfig::new(TpStrategy::OneD, 4, 2, 64, 32, 1);
        assert!(cfg.validate(&gpt(), 4096).is_err());
    }

    #[test]
    fn np_must_divide_depth() {
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 3, 32, 1);
        assert!(cfg.validate(&gpt(), 4096).unwrap_err().contains("depth"));
    }

    #[test]
    fn nd_must_divide_batch() {
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 3, 1);
        assert!(cfg
            .validate(&gpt(), 4096)
            .unwrap_err()
            .contains("global batch"));
    }

    #[test]
    fn microbatch_must_divide_local_batch() {
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 3);
        assert!(cfg
            .validate(&gpt(), 4096)
            .unwrap_err()
            .contains("local batch"));
    }

    #[test]
    fn vit_rejects_nt_64_for_1d() {
        // l = 64800 is not divisible by 64 — the constraint that makes 1D
        // TP cap out at nt=32 for the ViT (see DESIGN.md).
        let vit = txmodel::vit_64k().config;
        let cfg = ParallelConfig::new(TpStrategy::OneD, 64, 1, 48, 1, 1);
        assert!(cfg.validate(&vit, 4096).is_err());
        let cfg32 = ParallelConfig::new(TpStrategy::OneD, 32, 1, 48, 1, 1);
        // 32 divides l, h, e, f — but n = 32*48 isn't relevant to validate.
        cfg32.validate(&vit, 4096).unwrap();
    }

    #[test]
    fn summa_requires_n2_weight_divisibility() {
        let gpt = gpt();
        let mut cfg = ParallelConfig::new(TpStrategy::Summa, 8, 4, 1, 512, 8);
        cfg.summa_panels = 4;
        cfg.validate(&gpt, 4096).unwrap();
        // n2 = 3 does not divide e = 25600.
        let bad = ParallelConfig { n2: 3, ..cfg };
        assert!(bad.validate(&gpt, 4096).is_err());
    }

    #[test]
    fn placement_validation() {
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 1);
        let p = Placement {
            v1: 8,
            v2: 1,
            vp: 1,
            vd: 1,
        };
        p.validate(&cfg, 8).unwrap();
        assert!(p.validate(&cfg, 4).is_err()); // 8 GPUs into NVS4
        let bad = Placement {
            v1: 3,
            v2: 1,
            vp: 1,
            vd: 1,
        };
        assert!(bad.validate(&cfg, 8).is_err()); // 3 ∤ 8
    }

    #[test]
    fn comm_algo_defaults_to_auto_and_round_trips() {
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 1);
        assert_eq!(cfg.comm_algo, Algorithm::Auto);
        for comm_algo in Algorithm::ALL {
            let c = ParallelConfig { comm_algo, ..cfg };
            c.validate(&gpt(), 4096).unwrap();
            let back: ParallelConfig =
                serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn expert_parallel_fields_round_trip() {
        // The ep dimension sweep, in the Algorithm::ALL style: every
        // valid ep of the MoE preset's nd divisors must survive JSON
        // with the full struct intact (a silently-dropped field here
        // would corrupt cached sweep artifacts).
        let moe = txmodel::moe_1t().config;
        let base = ParallelConfig::new(TpStrategy::OneD, 4, 1, 8, 16, 1);
        for ep in [1u64, 2, 4, 8, 16] {
            let c = base.with_ep(ep);
            c.validate(&moe, 4096).unwrap();
            let json = serde_json::to_string(&c).unwrap();
            assert!(json.contains("\"ep\""), "ep field missing from {json}");
            let back: ParallelConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c);
            assert_eq!(back.ep, ep);
        }
    }

    #[test]
    fn display_format() {
        let cfg = ParallelConfig::new(TpStrategy::TwoD, 4, 4, 2, 8, 2);
        let s = format!("{cfg}");
        assert!(s.contains("2D TP") && s.contains("n1=4") && s.contains("bm=2"));
        // Dense configs keep the pre-MoE rendering exactly (figure
        // artifacts embed these strings); ep appears only when > 1.
        assert!(!s.contains("ep="));
        let moe = ParallelConfig::new(TpStrategy::OneD, 4, 1, 2, 16, 2).with_ep(8);
        assert!(format!("{moe}").contains("ep=8"));
    }

    #[test]
    fn expert_parallel_validation() {
        let moe = txmodel::moe_1t().config; // 64 experts, depth 32
        let gpt = gpt();
        // Dense models must keep ep = 1.
        let bad = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 1).with_ep(2);
        assert!(bad.validate(&gpt, 4096).unwrap_err().contains("MoE"));
        // MoE: ep must divide both nd and the expert count.
        let ok = ParallelConfig::new(TpStrategy::OneD, 4, 1, 8, 16, 1).with_ep(16);
        ok.validate(&moe, 4096).unwrap();
        let not_div_nd = ParallelConfig::new(TpStrategy::OneD, 4, 1, 8, 16, 1).with_ep(32);
        assert!(not_div_nd
            .validate(&moe, 4096)
            .unwrap_err()
            .contains("divide nd"));
        let mut few_experts = moe;
        few_experts.moe = Some(txmodel::MoeConfig {
            experts: 8,
            top_k: 1,
            capacity_pct: 125,
        });
        let not_div_e = ParallelConfig::new(TpStrategy::OneD, 4, 1, 8, 16, 1).with_ep(16);
        assert!(not_div_e
            .validate(&few_experts, 4096)
            .unwrap_err()
            .contains("expert count"));
        // MoE rejects non-1D strategies.
        let twod = ParallelConfig::new(TpStrategy::TwoD, 4, 2, 8, 8, 1);
        assert!(twod.validate(&moe, 4096).unwrap_err().contains("1D TP"));
    }

    #[test]
    fn validate_rejects_malformed_moe_configs() {
        // MoeConfig fields are public + Deserialize, so validate must
        // re-check the invariants with_moe enforces at construction.
        let cfg = ParallelConfig::new(TpStrategy::OneD, 4, 1, 8, 16, 1);
        let mut model = txmodel::moe_1t().config;
        let moe = |experts, top_k, capacity_pct| txmodel::MoeConfig {
            experts,
            top_k,
            capacity_pct,
        };
        for (bad, what) in [
            (moe(0, 1, 125), "experts"),
            (moe(1, 1, 125), "experts"),
            (moe(64, 0, 125), "top_k"),
            (moe(64, 65, 125), "top_k"),
            (moe(64, 1, 50), "capacity"),
        ] {
            model.moe = Some(bad);
            let err = cfg.validate(&model, 4096).unwrap_err();
            assert!(err.contains(what), "{bad:?}: {err}");
        }
    }
}
