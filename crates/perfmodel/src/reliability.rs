//! Analytic expected-goodput model: what a plan actually delivers on a
//! machine that fails.
//!
//! The paper's S3 search minimizes failure-free iteration time. At its
//! own target scale — thousands of GPUs for weeks — the quantity that
//! matters is *goodput*: tokens banked per wall-clock second, after
//! checkpoint overhead, failure rework, degraded links and stragglers.
//! This module prices that from an ordinary [`Evaluation`] plus the
//! system's [`ReliabilitySpec`], and exposes
//! it to the planner as
//! [`Objective::ExpectedGoodput`](crate::Objective::ExpectedGoodput) /
//! [`Objective::EffectiveTrainingDays`](crate::Objective::EffectiveTrainingDays).
//!
//! The model composes four standard first-order ingredients:
//!
//! 1. **Failure rate.** Hard failures are independent Poisson per
//!    component, so the job-level rate is `λ = n·λ_gpu + nics·λ_nic` —
//!    linear in machine size, which is exactly why the failure-free
//!    optimum (which often wants the *biggest, most communication-lean*
//!    layout) stops being optimal at scale.
//! 2. **Checkpoint cost.** A checkpoint drains the unique training
//!    state: each GPU's ZeRO-1 optimizer shard (disjoint across the
//!    whole job) plus one data-parallel replica's weight shards. The
//!    slowest writer therefore writes `weights + optimizer` bytes of
//!    its own shard — both straight out of [`crate::MemoryUsage`] — over the
//!    same per-NIC slow-tier path the DP gradient sync uses. Note the
//!    candidate-dependence: weight shards shrink with `n1·n2·np`, so
//!    checkpoint time is a *plan* property, not a system constant.
//! 3. **Young/Daly checkpoint interval.** The waste per useful second
//!    at interval `τ` is `C/τ + λ·(τ/2 + R)`; its closed-form minimum
//!    is the classic `τ* = sqrt(2·C/λ)` (equivalently
//!    `sqrt(2·C·MTBF)`), independent of the restart overhead `R`.
//!    [`optimal_checkpoint_interval`] is the closed form;
//!    [`solve_optimal_interval`] minimizes the same waste numerically
//!    (golden-section) and is cross-checked against the closed form by
//!    property test.
//! 4. **Slowdown inflation.** Stragglers inflate the compute-bound
//!    buckets: with per-GPU stationary probability `p` and slowdown
//!    `s`, the synchronous step is gated by the slowest participant,
//!    so compute time scales by `1 + (1 − (1−p)^n)(s − 1)`. Link
//!    degradation inflates the *slow-tier-exposed* communication
//!    buckets: a pipelined ring runs at its narrowest link, so with
//!    per-link degraded duty `d` over `L` cross-domain links the
//!    expected inflation is `1 + (1 − (1−d)^L)(1/φ − 1)` for a
//!    degraded-bandwidth factor `φ`. Which buckets are exposed is read
//!    off the placement: a bucket crosses the slow tier iff its group
//!    does not fit inside the NVS domains the placement gives it.
//!
//! Both slowdown terms assume the worst-case coupling (one slow
//! component gates the whole synchronous step) and independence between
//! fault processes. `trainsim::simulate_training` replays seeded fault
//! timelines against the same plans to quantify where those assumptions
//! hold and where they break (see the `reliability` figure).

use crate::evaluate::Evaluation;
use crate::planner::ObjectiveCtx;
use serde::{Deserialize, Serialize};
use systems::ReliabilitySpec;

/// Everything the expected-goodput model derives for one candidate plan
/// under one failure regime. Produced by [`assess`]; all fields are in
/// natural units so reports can cite them directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputReport {
    /// Whole-job hard-failure rate, per second.
    pub failure_rate: f64,
    /// Per-writer checkpoint bytes (weight shard + optimizer shard).
    pub checkpoint_bytes: f64,
    /// Checkpoint drain time `C`, seconds.
    pub checkpoint_time: f64,
    /// Young/Daly optimal checkpoint interval `τ*`, seconds
    /// (`∞` when the failure rate is zero).
    pub optimal_interval: f64,
    /// Multiplier applied to the compute-bound buckets (≥ 1).
    pub straggler_inflation: f64,
    /// Multiplier applied to the slow-tier-exposed comm buckets (≥ 1).
    pub degraded_comm_inflation: f64,
    /// Iteration time after straggler + degradation inflation, seconds.
    pub effective_iteration_time: f64,
    /// Fraction of wall-clock time spent on useful (kept) work, in
    /// `[0, 1]`: checkpoint overhead times failure availability.
    pub goodput_fraction: f64,
    /// Delivered training throughput: tokens per GPU-second, after all
    /// overheads.
    pub tokens_per_gpu_second: f64,
}

impl GoodputReport {
    /// Wall-clock days to complete `iterations` optimizer steps under
    /// this regime (`∞` when the goodput fraction is zero — the job
    /// fails faster than it can checkpoint).
    pub fn effective_days(&self, iterations: f64) -> f64 {
        if self.goodput_fraction > 0.0 {
            iterations * self.effective_iteration_time / (86_400.0 * self.goodput_fraction)
        } else {
            f64::INFINITY
        }
    }
}

/// Young/Daly optimal checkpoint interval, closed form:
/// `τ* = sqrt(2·C/λ)`. Returns `∞` for a zero failure rate (never
/// checkpoint) and `0` for a zero checkpoint cost (checkpoint always).
pub fn optimal_checkpoint_interval(checkpoint_time: f64, failure_rate: f64) -> f64 {
    if failure_rate <= 0.0 {
        return f64::INFINITY;
    }
    if checkpoint_time <= 0.0 {
        return 0.0;
    }
    (2.0 * checkpoint_time / failure_rate).sqrt()
}

/// Expected waste per useful second at checkpoint interval `τ`:
/// amortized checkpoint cost plus failure-rework and restart cost,
/// `C/τ + λ·(τ/2 + R)` — the objective Young/Daly minimize.
pub fn waste_rate(interval: f64, checkpoint_time: f64, failure_rate: f64, restart: f64) -> f64 {
    checkpoint_time / interval + failure_rate * (interval / 2.0 + restart)
}

/// Numerically minimizes [`waste_rate`] over the interval by
/// golden-section search on `log τ`. Exists to cross-check the closed
/// form (`tests/properties.rs` pins agreement) and to stay correct if
/// the waste model ever grows terms without a closed-form optimum.
pub fn solve_optimal_interval(checkpoint_time: f64, failure_rate: f64, restart: f64) -> f64 {
    if failure_rate <= 0.0 {
        return f64::INFINITY;
    }
    if checkpoint_time <= 0.0 {
        return 0.0;
    }
    let (mut lo, mut hi) = (1e-9f64.ln(), 1e12f64.ln());
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let w = |x: f64| waste_rate(x.exp(), checkpoint_time, failure_rate, restart);
    for _ in 0..200 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if w(a) < w(b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    ((lo + hi) / 2.0).exp()
}

/// Expected fraction of wall-clock time spent on useful work when
/// checkpointing every `τ` seconds of progress under failure rate `λ`
/// with restart overhead `R`: the checkpoint-overhead factor
/// `τ/(τ+C)` times the failure-availability factor
/// `1 − λ·(R + τ/2)` (each failure costs a restart plus half an
/// interval of rework on average), clamped to `[0, 1]`.
pub fn goodput_fraction(
    interval: f64,
    checkpoint_time: f64,
    failure_rate: f64,
    restart: f64,
) -> f64 {
    if failure_rate <= 0.0 {
        return 1.0;
    }
    let ckpt = if interval.is_finite() {
        interval / (interval + checkpoint_time)
    } else {
        1.0
    };
    let avail = 1.0 - failure_rate * (restart + interval.min(1.0 / failure_rate) / 2.0);
    (ckpt * avail).clamp(0.0, 1.0)
}

/// Expected compute-slowdown factor from stragglers: the synchronous
/// step is gated by the slowest of `n` GPUs, each independently slow
/// with probability `p` at factor `s`.
pub fn straggler_inflation(spec: &ReliabilitySpec, gpus: u64) -> f64 {
    let s = spec.straggler_slowdown.max(1.0);
    let p = spec.straggler_prob.clamp(0.0, 1.0);
    if p == 0.0 || s == 1.0 {
        return 1.0;
    }
    let p_any = 1.0 - (1.0 - p).powi(gpus.min(i32::MAX as u64) as i32);
    1.0 + p_any * (s - 1.0)
}

/// Expected slow-tier comm inflation from link degradation: a pipelined
/// ring runs at its narrowest link, so one degraded link among the
/// `slow_links` cross-domain links gates the whole collective.
pub fn degraded_comm_inflation(spec: &ReliabilitySpec, slow_links: u64) -> f64 {
    let duty = spec.link_degraded_duty();
    let phi = spec.link_degradation.clamp(f64::MIN_POSITIVE, 1.0);
    if duty == 0.0 || phi >= 1.0 {
        return 1.0;
    }
    let p_any = 1.0 - (1.0 - duty).powi(slow_links.min(i32::MAX as u64) as i32);
    1.0 + p_any * (1.0 / phi - 1.0)
}

/// Prices one evaluated candidate under the context's failure regime.
///
/// The context carries the [`ReliabilitySpec`] and the system geometry
/// ([`ObjectiveCtx::nvs_size`], [`ObjectiveCtx::nics_per_node`],
/// [`ObjectiveCtx::checkpoint_bandwidth`]); everything per-candidate —
/// GPU count, breakdown buckets, placement, memory shards — comes from
/// the [`Evaluation`].
pub fn assess(e: &Evaluation, ctx: &ObjectiveCtx) -> GoodputReport {
    let spec = &ctx.reliability;
    let n = e.config.total_gpus();
    let domains = n.div_ceil(ctx.nvs_size.max(1)).max(1);
    let nics = domains * ctx.nics_per_node.max(1);
    let failure_rate = spec.system_failure_rate(n, nics);

    // Slowdown inflation. Compute-bound buckets are gated by the
    // slowest GPU; slow-tier-exposed comm buckets by the narrowest
    // cross-domain link. A comm bucket is exposed iff its group spans
    // NVS domains under this placement (the same criterion the
    // collective model uses to price the slow tier at all). The
    // pipeline bubble is left uninflated — it is idle time proportional
    // to per-stage time, a second-order coupling the fault-injected
    // simulator quantifies.
    let s_infl = straggler_inflation(spec, n);
    let d_infl = degraded_comm_inflation(spec, domains.saturating_sub(1).max(1));
    let b = &e.breakdown;
    let tp_exposed = e.config.tensor_parallel() > e.placement.v1 * e.placement.v2;
    let dp_exposed = e.config.nd > e.placement.vd;
    let pp_exposed = e.config.np > 1 && e.placement.vp < 2;
    let infl = |exposed: bool, t: f64| if exposed { t * d_infl } else { t };
    let effective_iteration_time = (b.compute + b.memory) * s_infl
        + b.pp_bubble
        + infl(tp_exposed, b.tp_comm)
        + infl(dp_exposed, b.dp_comm)
        + infl(pp_exposed, b.pp_comm);

    // Checkpoint cost: the slowest writer drains its own weight shard
    // (one DP replica writes weights; the others hold copies) plus its
    // ZeRO-1 optimizer shard (disjoint across all n GPUs) over the
    // per-NIC slow-tier path.
    let checkpoint_bytes = e.memory.weights + e.memory.optimizer;
    let checkpoint_time = if ctx.checkpoint_bandwidth > 0.0 {
        checkpoint_bytes / ctx.checkpoint_bandwidth
    } else {
        0.0
    };

    let optimal_interval = optimal_checkpoint_interval(checkpoint_time, failure_rate);
    let fraction = goodput_fraction(
        optimal_interval,
        checkpoint_time,
        failure_rate,
        spec.restart_overhead_s,
    );
    let tokens = (ctx.global_batch * ctx.seq_len) as f64;
    let tokens_per_gpu_second = if effective_iteration_time > 0.0 {
        tokens / (effective_iteration_time * n as f64) * fraction
    } else {
        0.0
    };

    GoodputReport {
        failure_rate,
        checkpoint_bytes,
        checkpoint_time,
        optimal_interval,
        straggler_inflation: s_infl,
        degraded_comm_inflation: d_infl,
        effective_iteration_time,
        goodput_fraction: fraction,
        tokens_per_gpu_second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::best_placement_eval;
    use crate::{ParallelConfig, Planner, TpStrategy};
    use systems::{system, GpuGeneration, NvsSize};
    use txmodel::gpt3_175b;

    fn eval_and_ctx(spec: ReliabilitySpec) -> (Evaluation, ObjectiveCtx) {
        let model = gpt3_175b().config;
        let sys = system(GpuGeneration::B200, NvsSize::Nvs8).with_reliability(spec);
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 1, 512, 2);
        let e = best_placement_eval(&model, &cfg, 1024, &sys);
        let ctx = Planner::new(&model, &sys)
            .global_batch(1024)
            .objective_ctx();
        (e, ctx)
    }

    #[test]
    fn young_daly_closed_form() {
        // τ* = sqrt(2·C/λ), independent of the restart overhead.
        let (c, lambda) = (30.0, 1.0 / 12_000.0);
        let tau = optimal_checkpoint_interval(c, lambda);
        assert!((tau - (2.0 * c / lambda).sqrt()).abs() < 1e-9);
        for r in [0.0, 100.0, 3600.0] {
            let solved = solve_optimal_interval(c, lambda, r);
            assert!(
                (solved - tau).abs() / tau < 1e-6,
                "R={r}: {solved} vs {tau}"
            );
        }
    }

    #[test]
    fn interval_edge_cases() {
        assert_eq!(optimal_checkpoint_interval(30.0, 0.0), f64::INFINITY);
        assert_eq!(optimal_checkpoint_interval(0.0, 1e-4), 0.0);
        assert_eq!(solve_optimal_interval(30.0, 0.0, 0.0), f64::INFINITY);
        assert_eq!(goodput_fraction(f64::INFINITY, 30.0, 0.0, 600.0), 1.0);
    }

    #[test]
    fn goodput_fraction_degrades_gracefully() {
        // A regime failing faster than it can restart delivers nothing.
        let f = goodput_fraction(10.0, 30.0, 1.0, 600.0);
        assert_eq!(f, 0.0);
        // A mild regime is close to 1.
        let tau = optimal_checkpoint_interval(30.0, 1e-5);
        let g = goodput_fraction(tau, 30.0, 1e-5, 600.0);
        assert!(g > 0.95 && g < 1.0, "{g}");
    }

    #[test]
    fn failure_free_spec_reproduces_failure_free_throughput() {
        let (e, ctx) = eval_and_ctx(ReliabilitySpec::failure_free());
        let r = assess(&e, &ctx);
        assert_eq!(r.goodput_fraction, 1.0);
        assert_eq!(r.straggler_inflation, 1.0);
        assert_eq!(r.degraded_comm_inflation, 1.0);
        assert_eq!(r.effective_iteration_time, e.iteration_time);
        let ideal = (ctx.global_batch * ctx.seq_len) as f64
            / (e.iteration_time * e.config.total_gpus() as f64);
        assert_eq!(r.tokens_per_gpu_second, ideal);
    }

    #[test]
    fn datacenter_regime_costs_throughput_but_not_everything() {
        let (e, ctx) = eval_and_ctx(ReliabilitySpec::datacenter());
        let r = assess(&e, &ctx);
        assert!(r.goodput_fraction > 0.5 && r.goodput_fraction < 1.0);
        assert!(r.effective_iteration_time > e.iteration_time);
        assert!(r.failure_rate > 0.0);
        assert!(r.checkpoint_time > 0.0);
        assert!(r.optimal_interval.is_finite() && r.optimal_interval > 0.0);
        assert!(r.effective_days(1000.0).is_finite());
    }

    #[test]
    fn checkpoint_bytes_shrink_with_model_parallelism() {
        // The per-writer checkpoint is the GPU's own shard: more
        // tensor/pipeline parallelism ⇒ smaller shards ⇒ cheaper
        // checkpoints (the candidate-dependence the objective trades
        // on).
        let model = gpt3_175b().config;
        let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
        let ctx = Planner::new(&model, &sys)
            .global_batch(1024)
            .objective_ctx();
        let wide = best_placement_eval(
            &model,
            &ParallelConfig::new(TpStrategy::OneD, 16, 1, 1, 256, 4),
            1024,
            &sys,
        );
        let narrow = best_placement_eval(
            &model,
            &ParallelConfig::new(TpStrategy::OneD, 4, 1, 1, 1024, 1),
            1024,
            &sys,
        );
        let (rw, rn) = (assess(&wide, &ctx), assess(&narrow, &ctx));
        assert!(rw.checkpoint_bytes < rn.checkpoint_bytes);
        assert!(rw.checkpoint_time < rn.checkpoint_time);
    }
}
