//! The paper's primary contribution: an analytical, parameterized
//! performance model of multi-dimensionally parallel transformer training
//! and a brute-force design-space search over parallelization
//! configurations, microbatch sizes and GPU-to-NVSwitch-domain
//! assignments — extended beyond the paper with NCCL-style collective-
//! algorithm selection ([`ParallelConfig::comm_algo`], default
//! [`Algorithm::Auto`]) and first-class Mixture-of-Experts support (an
//! expert-parallel degree [`ParallelConfig::ep`] whose AllToAll
//! dispatch/combine and expert-replica gradient sync are priced through
//! the same machinery).
//!
//! # Pipeline (paper §III.A)
//!
//! 1. **(S1) Counting** — [`partition`] builds a [`plan::LayerProfile`] for
//!    one transformer block under a chosen tensor-parallel strategy
//!    ([`TpStrategy`]): FLOPs, HBM bytes, communication volumes and stored
//!    activation bytes, per microbatch. MoE blocks add the router GEMM,
//!    the capacity-padded grouped expert GEMMs and two AllToAlls over the
//!    expert-parallel group.
//! 2. **(S2) Timing** — [`timing`] converts counts into time with a
//!    roofline model; [`evaluate`](mod@evaluate) assembles layer times, pipeline bubbles,
//!    point-to-point and data/expert-parallel communication into an
//!    iteration time with a [`Breakdown`] by bucket, plus a
//!    [`MemoryUsage`] feasibility check.
//! 3. **(S3) Search** — the [`Planner`] composes a typed [`SearchSpace`]
//!    (GPU counts, batch, TP strategies, microbatch/interleave/ZeRO/
//!    expert knobs, degree bounds, user predicates) with an [`Objective`]
//!    (iteration time, training days, tokens/s/GPU, HBM headroom,
//!    GPU-seconds cost, or weighted/lexicographic combinations) and
//!    enumerates every factorization `n = n1·n2·np·nd` plus the
//!    microbatch size, NVS placement, SUMMA panel count, expert-parallel
//!    degree `ep | nd`, interleaving and ZeRO-3 knobs — one joint space,
//!    fanned out over the rayon pool against a build-once
//!    [`ProfileCache`] — returning a [`PlanSet`]: the top-k ranked
//!    [`Plan`]s and the exact Pareto frontier across the selected
//!    objectives, fully serializable. The original free functions
//!    ([`optimize`], [`sweep_partitions`], [`best_placement_eval`])
//!    remain as thin, bit-identical wrappers.
//!
//! ```
//! use perfmodel::{Objective, Planner, TpStrategy};
//! use systems::{system, GpuGeneration, NvsSize};
//! use txmodel::gpt3_1t;
//!
//! let model = gpt3_1t().config;
//! let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
//! let plans = Planner::new(&model, &sys)
//!     .gpus(1024)
//!     .global_batch(4096)
//!     .strategy(TpStrategy::OneD)
//!     .top_k(3)
//!     .pareto([Objective::IterationTime, Objective::HbmHeadroom])
//!     .execute();
//! let best = plans.best().expect("a feasible configuration exists");
//! assert!(best.eval.iteration_time > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod breakdown;
pub mod config;
pub mod evaluate;
pub mod memory;
pub mod ord;
pub mod partition;
pub mod placement;
pub mod plan;
pub mod planner;
pub mod reliability;
pub mod search;
pub mod sensitivity;
pub mod serving;
pub mod timing;
pub mod training;

pub use breakdown::Breakdown;
pub use collectives::Algorithm;
pub use config::{ParallelConfig, Placement, TpStrategy};
pub use evaluate::{
    dp_sync_time, evaluate, evaluate_with_profile, evaluate_with_tp_overlap, stage_times,
    Evaluation,
};
pub use memory::MemoryUsage;
pub use partition::{reset_search_stats, search_stats, ProfileCache, ProfileKey, SearchStats};
pub use placement::enumerate_placements;
pub use planner::{
    ConfigError, LexStage, Objective, ObjectiveCtx, Plan, PlanSet, Planner, PlannerConfig, Score,
    SearchSpace, WeightedTerm,
};
pub use reliability::GoodputReport;
pub use search::{
    best_placement_eval, best_placement_eval_with_profile, enumerate_partitions, optimize,
    sweep_partitions, SearchOptions,
};
pub use sensitivity::{elasticities, Elasticity, HardwareAxis};
pub use serving::{PdPlacement, ServingCtx, ServingReport, SloSpec};
pub use training::training_days;

#[cfg(test)]
mod serde_roundtrip {
    use super::*;
    use systems::{system, GpuGeneration, NvsSize};
    use txmodel::gpt3_1t;

    #[test]
    fn evaluation_survives_json() {
        let model = gpt3_1t().config;
        let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 16, 8, 1);
        let e = search::best_placement_eval(&model, &cfg, 4096, &sys);
        let back: Evaluation = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn comm_patterns_survive_json() {
        // Exercises both enum variant encodings: struct variants
        // (Exposed/SummaOverlapped) through the layer profile.
        let model = gpt3_1t().config;
        let gpu = GpuGeneration::B200.gpu();
        for (strategy, n1, n2, nb) in [(TpStrategy::OneD, 8, 1, 1), (TpStrategy::Summa, 4, 2, 4)] {
            let profile = partition::build_profile(&model, strategy, n1, n2, 1, nb, 1, &gpu);
            let json = serde_json::to_string(&profile.fwd.comms).unwrap();
            let back: Vec<plan::CommPattern> = serde_json::from_str(&json).unwrap();
            assert_eq!(back, profile.fwd.comms);
        }
    }
}
