//! Profiling counters on the heaviest search in the bench suite: the
//! SUMMA sweep of GPT3-1T on 16384 GPUs (`gpt_summa_n16384` in
//! `out/bench.json`).
//!
//! Runs the pruned `optimize` path and the unpruned full sweep
//! back-to-back and prints per-phase wall clock next to the
//! [`perfmodel::search_stats`] deltas: memo hits split by level
//! (thread-local L1 vs the process-wide shared table), profile rebuild
//! counts and time, and how many candidates the branch-and-bound /
//! dominated-elimination prunes skipped. See `PERFORMANCE.md` for how
//! these numbers feed the perf methodology.
//!
//! ```text
//! cargo run --release -p perfmodel --example search_stats
//! ```

use perfmodel::{
    enumerate_partitions, optimize, reset_search_stats, search_stats, Planner, SearchOptions,
    SearchSpace, TpStrategy,
};
use std::time::Instant;
use systems::{system, GpuGeneration, NvsSize};
use txmodel::gpt3_1t;

fn main() {
    let model = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let opts = SearchOptions::default()
        .gpus(16384)
        .global_batch(4096)
        .strategy(TpStrategy::Summa);

    let t0 = Instant::now();
    let parts = enumerate_partitions(&model, &opts);
    println!(
        "enumerate:      {:>7} candidates in {:.2?}",
        parts.len(),
        t0.elapsed()
    );

    // Pruned single-optimum path (the optimize default).
    reset_search_stats();
    let t0 = Instant::now();
    let best = optimize(&model, &sys, &opts).expect("a feasible SUMMA config exists");
    let dt = t0.elapsed();
    let s = search_stats();
    println!(
        "optimize:       {dt:.2?} (best iteration {:.4} s)",
        best.iteration_time
    );
    println!(
        "  profiles:     {} built in {:.2?}",
        s.profile_builds,
        std::time::Duration::from_nanos(s.profile_build_nanos)
    );
    println!(
        "  memo:         {} local hits, {} shared hits, {} misses",
        s.memo_local_hits, s.memo_shared_hits, s.memo_misses
    );
    println!(
        "  pruned:       {} by bound, {} dominated",
        s.bound_pruned, s.dominated_pruned
    );

    // Unpruned full sweep (what every candidate costs).
    reset_search_stats();
    let t0 = Instant::now();
    let evals = Planner::new(&model, &sys)
        .space(SearchSpace::from(&opts))
        .evaluations();
    let dt = t0.elapsed();
    let s = search_stats();
    println!("full sweep:     {dt:.2?} ({} feasible evaluations)", {
        evals.iter().filter(|e| e.feasible).count()
    });
    println!(
        "  memo:         {} local hits, {} shared hits, {} misses",
        s.memo_local_hits, s.memo_shared_hits, s.memo_misses
    );
}
