//! Failure characteristics of a training cluster.
//!
//! The paper's model (and every figure it produces) assumes a
//! failure-free machine; at its own target scale — thousands of GPUs for
//! weeks — delivered throughput is gated as much by node failures, link
//! flaps and stragglers as by the parallelization. [`ReliabilitySpec`]
//! is the plain-data description of that failure regime, carried by
//! [`crate::SystemSpec`] exactly like the compute and network
//! characteristics: the *time* formulas (expected goodput, Young/Daly
//! checkpoint intervals) live in `perfmodel::reliability`, and the
//! seeded fault-injection harness in `trainsim` replays event streams
//! sampled from these rates.
//!
//! Three independent fault processes are described:
//!
//! * **Hard failures** — a GPU or NIC dies and the job restarts from the
//!   last checkpoint. Poisson with per-component MTBFs, so the system
//!   rate scales linearly with the GPU count (the paper's regime: a
//!   50 000 h per-GPU MTBF means a 4096-GPU job fails roughly every
//!   12 hours — the rate reported for production runs of this scale).
//! * **Link degradation** — an inter-node link drops to a fraction of
//!   its bandwidth for a while (flapping optics, congested leaf switch)
//!   without killing the job. Modeled per slow link as a Poisson flap
//!   process with a fixed degraded duration and bandwidth factor.
//! * **Stragglers** — a node runs slow (thermal throttling, ECC
//!   scrubbing) for a while. A two-point slowdown distribution: at any
//!   instant each GPU is a straggler with probability
//!   `straggler_prob`, slowed by `straggler_slowdown`; episodes last
//!   `straggler_duration_s` (which fixes the episode arrival rate).

use serde::{Deserialize, Serialize};

/// Failure-regime description of a system (all plain data; `Copy`).
///
/// Defaults come from [`ReliabilitySpec::datacenter`]. A failure-free
/// machine — the implicit assumption of every pre-existing code path —
/// is [`ReliabilitySpec::failure_free`], which zeroes every rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilitySpec {
    /// Mean time between hard failures of one GPU, hours. `0` disables
    /// GPU failures (the failure-free limit), matching production
    /// observations only as `∞` would.
    pub gpu_mtbf_hours: f64,
    /// Mean time between hard failures of one NIC, hours. `0` disables.
    pub nic_mtbf_hours: f64,
    /// Bandwidth factor of a degraded inter-node link, in `(0, 1]`
    /// (e.g. `0.4` = the link runs at 40% of nominal while degraded).
    pub link_degradation: f64,
    /// Degradation episodes per slow link per hour (Poisson rate).
    pub link_flap_rate_per_hour: f64,
    /// Mean duration of one degradation episode, seconds.
    pub flap_duration_s: f64,
    /// Stationary probability that a given GPU is a straggler.
    pub straggler_prob: f64,
    /// Slowdown factor of a straggling GPU's compute (≥ 1).
    pub straggler_slowdown: f64,
    /// Mean duration of one straggler episode, seconds (fixes the
    /// episode arrival rate `straggler_prob / straggler_duration_s`).
    pub straggler_duration_s: f64,
    /// Time to detect a failure, reschedule and reload the last
    /// checkpoint, seconds (on top of the lost rework).
    pub restart_overhead_s: f64,
}

impl Default for ReliabilitySpec {
    fn default() -> Self {
        Self::datacenter()
    }
}

impl ReliabilitySpec {
    /// A realistic large-cluster failure regime, anchored to published
    /// production numbers: ~50 000 h per-GPU MTBF (one interruption
    /// every ~3 h at 16K GPUs, as reported for frontier-scale runs),
    /// NICs an order of magnitude more reliable, occasional link
    /// degradation to 40% bandwidth, and rare 1.5× straggler episodes.
    pub fn datacenter() -> Self {
        Self {
            gpu_mtbf_hours: 50_000.0,
            nic_mtbf_hours: 500_000.0,
            link_degradation: 0.4,
            link_flap_rate_per_hour: 0.01,
            flap_duration_s: 120.0,
            straggler_prob: 1e-4,
            straggler_slowdown: 1.5,
            straggler_duration_s: 300.0,
            restart_overhead_s: 600.0,
        }
    }

    /// The failure-free limit: every rate zero, every factor identity.
    /// Under this spec the reliability layer reproduces the plain
    /// failure-free model bit for bit.
    pub fn failure_free() -> Self {
        Self {
            gpu_mtbf_hours: 0.0,
            nic_mtbf_hours: 0.0,
            link_degradation: 1.0,
            link_flap_rate_per_hour: 0.0,
            flap_duration_s: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            straggler_duration_s: 0.0,
            restart_overhead_s: 0.0,
        }
    }

    /// Overrides the per-GPU MTBF (hours); `0` disables GPU failures.
    pub fn with_gpu_mtbf_hours(mut self, hours: f64) -> Self {
        self.gpu_mtbf_hours = hours;
        self
    }

    /// Overrides the per-NIC MTBF (hours); `0` disables NIC failures.
    pub fn with_nic_mtbf_hours(mut self, hours: f64) -> Self {
        self.nic_mtbf_hours = hours;
        self
    }

    /// Overrides the link-degradation process: bandwidth `factor` while
    /// degraded, `flaps_per_hour` episodes per slow link, each lasting
    /// `duration_s` seconds.
    pub fn with_link_flaps(mut self, factor: f64, flaps_per_hour: f64, duration_s: f64) -> Self {
        self.link_degradation = factor;
        self.link_flap_rate_per_hour = flaps_per_hour;
        self.flap_duration_s = duration_s;
        self
    }

    /// Overrides the straggler distribution: each GPU straggles with
    /// stationary probability `prob` at slowdown `slowdown`, in
    /// episodes of `duration_s` seconds.
    pub fn with_stragglers(mut self, prob: f64, slowdown: f64, duration_s: f64) -> Self {
        self.straggler_prob = prob;
        self.straggler_slowdown = slowdown;
        self.straggler_duration_s = duration_s;
        self
    }

    /// Overrides the restart overhead (detection + reschedule +
    /// checkpoint reload), seconds.
    pub fn with_restart_overhead_s(mut self, seconds: f64) -> Self {
        self.restart_overhead_s = seconds;
        self
    }

    /// Hard-failure rate of one GPU, per second (`0` MTBF ⇒ rate 0).
    pub fn gpu_failure_rate(&self) -> f64 {
        if self.gpu_mtbf_hours > 0.0 {
            1.0 / (self.gpu_mtbf_hours * 3600.0)
        } else {
            0.0
        }
    }

    /// Hard-failure rate of one NIC, per second (`0` MTBF ⇒ rate 0).
    pub fn nic_failure_rate(&self) -> f64 {
        if self.nic_mtbf_hours > 0.0 {
            1.0 / (self.nic_mtbf_hours * 3600.0)
        } else {
            0.0
        }
    }

    /// Whole-job hard-failure rate for `gpus` GPUs with `nics` NICs, per
    /// second — independent Poisson components, so rates add and the
    /// system rate scales linearly with machine size.
    pub fn system_failure_rate(&self, gpus: u64, nics: u64) -> f64 {
        gpus as f64 * self.gpu_failure_rate() + nics as f64 * self.nic_failure_rate()
    }

    /// Stationary fraction of time one slow link spends degraded
    /// (`rate · duration`, clamped to 1).
    pub fn link_degraded_duty(&self) -> f64 {
        (self.link_flap_rate_per_hour / 3600.0 * self.flap_duration_s).clamp(0.0, 1.0)
    }

    /// True when every process is off — the spec of
    /// [`ReliabilitySpec::failure_free`] or anything equivalent to it.
    pub fn is_failure_free(&self) -> bool {
        self.gpu_failure_rate() == 0.0
            && self.nic_failure_rate() == 0.0
            && (self.link_degraded_duty() == 0.0 || self.link_degradation >= 1.0)
            && (self.straggler_prob == 0.0 || self.straggler_slowdown <= 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_scale_linearly_with_machine_size() {
        let r = ReliabilitySpec::datacenter();
        let one = r.system_failure_rate(1, 1);
        let big = r.system_failure_rate(4096, 4096);
        assert!((big / one - 4096.0).abs() < 1e-9);
        // 50k h per-GPU MTBF at 4096 GPUs: a failure every ~12 h.
        let mtbf_s = 1.0 / r.system_failure_rate(4096, 4096);
        assert!(mtbf_s > 8.0 * 3600.0 && mtbf_s < 14.0 * 3600.0, "{mtbf_s}");
    }

    #[test]
    fn failure_free_is_inert() {
        let r = ReliabilitySpec::failure_free();
        assert!(r.is_failure_free());
        assert_eq!(r.system_failure_rate(1 << 20, 1 << 20), 0.0);
        assert_eq!(r.link_degraded_duty(), 0.0);
        assert!(!ReliabilitySpec::datacenter().is_failure_free());
    }

    #[test]
    fn zero_mtbf_means_no_failures_not_infinite_rate() {
        let r = ReliabilitySpec::datacenter()
            .with_gpu_mtbf_hours(0.0)
            .with_nic_mtbf_hours(0.0);
        assert_eq!(r.system_failure_rate(4096, 4096), 0.0);
    }

    #[test]
    fn builders_override_fields() {
        let r = ReliabilitySpec::failure_free()
            .with_gpu_mtbf_hours(1000.0)
            .with_link_flaps(0.5, 1.0, 60.0)
            .with_stragglers(0.01, 2.0, 30.0)
            .with_restart_overhead_s(42.0);
        assert_eq!(r.gpu_mtbf_hours, 1000.0);
        assert_eq!(r.link_degradation, 0.5);
        assert!((r.link_degraded_duty() - 60.0 / 3600.0).abs() < 1e-12);
        assert_eq!(r.straggler_slowdown, 2.0);
        assert_eq!(r.restart_overhead_s, 42.0);
    }

    #[test]
    fn duty_cycle_clamps_to_one() {
        let r = ReliabilitySpec::failure_free().with_link_flaps(0.5, 3600.0, 10.0);
        assert_eq!(r.link_degraded_duty(), 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = ReliabilitySpec::datacenter();
        let json = serde_json::to_string(&r).unwrap();
        let back: ReliabilitySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
