//! Hardware and network descriptions for the fmperf performance model.
//!
//! This crate is the catalog of *system characteristics* the paper's
//! performance model is parameterized by (paper Table A3): per-GPU compute
//! rates (tensor-core and vector FP16), HBM bandwidth and capacity, and the
//! two-tier network — a fast NVSwitch (NVS) domain and a slower InfiniBand
//! (IB) fabric whose effective bandwidth scales with the number of NICs a
//! collective can drive.
//!
//! Everything here is plain data; the time formulas live in the
//! `collectives` and `perfmodel` crates, and the `netsim` discrete-event
//! simulator lowers the same [`NetworkSpec`] numbers into link
//! topologies. Keeping the data separate makes the co-design sweeps of
//! Figs. A5/A6 (scaling FLOP rate, capacity and bandwidth independently)
//! trivial: they are ordinary struct updates via [`SystemBuilder`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod catalog;
mod gpu;
mod network;
mod reliability;

pub use builder::SystemBuilder;
pub use catalog::{perlmutter, system, GpuGeneration, NvsSize, ALL_GENERATIONS, ALL_NVS_SIZES};
pub use gpu::GpuSpec;
pub use network::NetworkSpec;
pub use reliability::ReliabilitySpec;

use serde::{Deserialize, Serialize};

/// A complete system description: the accelerator, the two-tier network and
/// the NVS domain geometry.
///
/// `nvs_size` is the number of GPUs that share one fast (NVSwitch) domain —
/// the paper's `n_NVS`. `nics_per_node` bounds how many IB rings a single
/// collective can drive out of one domain; the paper assumes one NIC per
/// GPU, so it defaults to `nvs_size`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Human-readable name, e.g. `"B200-NVS8"`.
    pub name: String,
    /// Accelerator characteristics.
    pub gpu: GpuSpec,
    /// Two-tier network characteristics.
    pub network: NetworkSpec,
    /// GPUs per NVSwitch domain (`n_NVS`).
    pub nvs_size: u64,
    /// NICs available per NVS domain for inter-node traffic.
    pub nics_per_node: u64,
    /// Failure regime (MTBFs, link flaps, stragglers). Catalog systems
    /// carry [`ReliabilitySpec::datacenter`]; the failure-free code
    /// paths never read it.
    pub reliability: ReliabilitySpec,
}

impl SystemSpec {
    /// Number of NVS domains needed to host `n` GPUs (at least 1).
    pub fn domains_for(&self, n: u64) -> u64 {
        n.div_ceil(self.nvs_size).max(1)
    }

    /// True if a group of `n` GPUs fits inside a single NVS domain.
    pub fn fits_in_domain(&self, n: u64) -> bool {
        n <= self.nvs_size
    }

    /// Renames the system (builder-style convenience).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the failure regime (builder-style convenience).
    pub fn with_reliability(mut self, reliability: ReliabilitySpec) -> Self {
        self.reliability = reliability;
        self
    }

    /// Total NICs available to a job spanning `n` GPUs: the per-domain
    /// NIC count times the number of (fully or partially) occupied NVS
    /// domains. Used by the reliability model to scale NIC failure
    /// rates with machine size.
    pub fn nics_for(&self, n: u64) -> u64 {
        self.domains_for(n) * self.nics_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_for_rounds_up() {
        let s = system(GpuGeneration::B200, NvsSize::Nvs8);
        assert_eq!(s.domains_for(1), 1);
        assert_eq!(s.domains_for(8), 1);
        assert_eq!(s.domains_for(9), 2);
        assert_eq!(s.domains_for(16), 2);
        assert_eq!(s.domains_for(17), 3);
    }

    #[test]
    fn fits_in_domain_boundary() {
        let s = system(GpuGeneration::A100, NvsSize::Nvs4);
        assert!(s.fits_in_domain(4));
        assert!(!s.fits_in_domain(5));
    }

    #[test]
    fn serde_roundtrip() {
        let s = system(GpuGeneration::H200, NvsSize::Nvs64);
        let json = serde_json::to_string(&s).unwrap();
        let back: SystemSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
