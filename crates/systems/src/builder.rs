//! Fluent builder for custom / hypothetical systems.
//!
//! The co-design studies of Figs. A5 and A6 sweep individual hardware
//! parameters (tensor-core rate, HBM capacity, HBM bandwidth) while holding
//! the rest of a generation's characteristics fixed. `SystemBuilder` starts
//! from a catalog system and overrides fields one at a time.

use crate::catalog::{system, GpuGeneration, NvsSize};
use crate::SystemSpec;

/// Builder over [`SystemSpec`], starting from a catalog generation.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    spec: SystemSpec,
}

impl SystemBuilder {
    /// Starts from one of the paper's nine catalog systems.
    pub fn from_catalog(gen: GpuGeneration, nvs: NvsSize) -> Self {
        Self {
            spec: system(gen, nvs),
        }
    }

    /// Starts from an arbitrary existing spec.
    pub fn from_spec(spec: SystemSpec) -> Self {
        Self { spec }
    }

    /// Overrides the tensor-core FLOP rate (FLOPs/s), scaling the vector
    /// rate proportionally (as in the Fig. A5 y-axis sweep).
    pub fn tensor_flops(mut self, flops: f64) -> Self {
        self.spec.gpu = self.spec.gpu.with_tensor_flops(flops);
        self
    }

    /// Overrides HBM capacity (bytes).
    pub fn hbm_capacity(mut self, bytes: f64) -> Self {
        self.spec.gpu = self.spec.gpu.with_hbm_capacity(bytes);
        self
    }

    /// Overrides HBM bandwidth (bytes/s).
    pub fn hbm_bandwidth(mut self, bytes_per_s: f64) -> Self {
        self.spec.gpu = self.spec.gpu.with_hbm_bandwidth(bytes_per_s);
        self
    }

    /// Overrides the NVS domain size, keeping one NIC per GPU.
    pub fn nvs_size(mut self, gpus: u64) -> Self {
        assert!(gpus >= 1, "NVS domain must contain at least one GPU");
        self.spec.nvs_size = gpus;
        self.spec.nics_per_node = gpus;
        self
    }

    /// Overrides the NIC count per NVS domain independently of its size.
    pub fn nics_per_node(mut self, nics: u64) -> Self {
        self.spec.nics_per_node = nics.max(1);
        self
    }

    /// Scales both network-tier bandwidths.
    pub fn network_bandwidth_scale(mut self, scale: f64) -> Self {
        self.spec.network = self.spec.network.with_bandwidth_scale(scale);
        self
    }

    /// Replaces the whole failure regime (see
    /// [`crate::ReliabilitySpec`]).
    pub fn reliability(mut self, spec: crate::ReliabilitySpec) -> Self {
        self.spec.reliability = spec;
        self
    }

    /// Overrides the per-GPU MTBF in hours (`0` disables GPU failures),
    /// keeping the rest of the failure regime.
    pub fn gpu_mtbf_hours(mut self, hours: f64) -> Self {
        self.spec.reliability = self.spec.reliability.with_gpu_mtbf_hours(hours);
        self
    }

    /// Renames the resulting system.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Finishes the build.
    pub fn build(self) -> SystemSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_compose() {
        let s = SystemBuilder::from_catalog(GpuGeneration::B200, NvsSize::Nvs8)
            .tensor_flops(1000e12)
            .hbm_capacity(256e9)
            .hbm_bandwidth(4e12)
            .name("hypothetical")
            .build();
        assert_eq!(s.name, "hypothetical");
        assert!((s.gpu.tensor_flops - 1000e12).abs() < 1.0);
        assert!((s.gpu.hbm_capacity - 256e9).abs() < 1.0);
        assert!((s.gpu.hbm_bandwidth - 4e12).abs() < 1.0);
        // Untouched fields retain B200 values.
        assert_eq!(s.network.ib_bandwidth, 100e9);
        assert_eq!(s.nvs_size, 8);
    }

    #[test]
    fn nvs_size_sets_nics() {
        let s = SystemBuilder::from_catalog(GpuGeneration::A100, NvsSize::Nvs4)
            .nvs_size(16)
            .build();
        assert_eq!(s.nvs_size, 16);
        assert_eq!(s.nics_per_node, 16);
    }

    #[test]
    fn vector_rate_scales_with_tensor_override() {
        let base = GpuGeneration::B200.gpu();
        let s = SystemBuilder::from_catalog(GpuGeneration::B200, NvsSize::Nvs8)
            .tensor_flops(base.tensor_flops * 2.0)
            .build();
        assert!((s.gpu.vector_flops - base.vector_flops * 2.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_nvs_panics() {
        let _ = SystemBuilder::from_catalog(GpuGeneration::A100, NvsSize::Nvs4).nvs_size(0);
    }
}
