//! Two-tier network characteristics.

use serde::{Deserialize, Serialize};

/// Dual-bandwidth network description (paper §III S2, Table A3).
///
/// The fast tier is the NVSwitch/NVLink domain (`α_f`, `β_f`); the slow tier
/// is the inter-node InfiniBand/SlingShot fabric (`α_s`, `β_s`). NCCL can
/// drive multiple IB rings — one per NIC — so the *effective* slow
/// bandwidth for a collective is `n_rings · β_s`, eventually capped by the
/// fast-tier bandwidth each GPU must also sustain. `bandwidth_efficiency`
/// is the paper's empirical 70% achievable-fraction derate, applied to both
/// tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Fast-tier (NVS) one-directional per-GPU bandwidth, bytes/s (`β_f`).
    pub nvs_bandwidth: f64,
    /// Fast-tier per-hop latency, seconds (`α_f`).
    pub nvs_latency: f64,
    /// Slow-tier (IB) per-NIC one-directional bandwidth, bytes/s (`β_s`).
    pub ib_bandwidth: f64,
    /// Slow-tier per-hop latency, seconds (`α_s`).
    pub ib_latency: f64,
    /// Fraction of peak bandwidth achieved in practice (paper: 0.7).
    pub bandwidth_efficiency: f64,
}

impl NetworkSpec {
    /// Effective (derated) fast-tier bandwidth in bytes/s.
    pub fn effective_nvs_bandwidth(&self) -> f64 {
        self.nvs_bandwidth * self.bandwidth_efficiency
    }

    /// Effective (derated) slow-tier bandwidth for a collective able to
    /// drive `nics` NICs concurrently, in bytes/s.
    pub fn effective_ib_bandwidth(&self, nics: u64) -> f64 {
        self.ib_bandwidth * nics.max(1) as f64 * self.bandwidth_efficiency
    }

    /// Returns a copy with both tier bandwidths scaled by `scale`.
    ///
    /// The paper assumes NVLink and IB bandwidth grow proportionally across
    /// GPU generations; this helper implements that coupling for sweeps.
    pub fn with_bandwidth_scale(mut self, scale: f64) -> Self {
        self.nvs_bandwidth *= scale;
        self.ib_bandwidth *= scale;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkSpec {
        NetworkSpec {
            nvs_bandwidth: 300e9,
            nvs_latency: 2.5e-6,
            ib_bandwidth: 25e9,
            ib_latency: 5e-6,
            bandwidth_efficiency: 0.7,
        }
    }

    #[test]
    fn efficiency_derates_both_tiers() {
        let n = net();
        assert!((n.effective_nvs_bandwidth() - 210e9).abs() < 1.0);
        assert!((n.effective_ib_bandwidth(1) - 17.5e9).abs() < 1.0);
    }

    #[test]
    fn nic_aggregation_multiplies_ib() {
        let n = net();
        assert!((n.effective_ib_bandwidth(4) - 4.0 * n.effective_ib_bandwidth(1)).abs() < 1.0);
    }

    #[test]
    fn zero_nics_clamps_to_one() {
        let n = net();
        assert_eq!(n.effective_ib_bandwidth(0), n.effective_ib_bandwidth(1));
    }

    #[test]
    fn bandwidth_scale_is_proportional() {
        let n = net().with_bandwidth_scale(2.0);
        assert!((n.nvs_bandwidth - 600e9).abs() < 1.0);
        assert!((n.ib_bandwidth - 50e9).abs() < 1.0);
    }
}
