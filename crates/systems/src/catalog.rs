//! Built-in system catalog (paper Table A3).

use crate::{GpuSpec, NetworkSpec, ReliabilitySpec, SystemSpec};

/// GPU generations studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuGeneration {
    /// NVIDIA A100 (Perlmutter's GPU; the paper's validation platform).
    A100,
    /// NVIDIA H200 (projected system, paper Table A3).
    H200,
    /// NVIDIA B200 (projected system, paper Table A3).
    B200,
}

/// NVSwitch domain sizes studied in the paper (Fig. 5: NVS4/NVS8/NVS64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvsSize {
    /// 4 GPUs per NVSwitch domain (one Perlmutter node).
    Nvs4,
    /// 8 GPUs per NVSwitch domain (DGX-style node).
    Nvs8,
    /// 64 GPUs per NVSwitch domain (rail-scale NVLink fabric).
    Nvs64,
}

/// All generations, in release order.
pub const ALL_GENERATIONS: [GpuGeneration; 3] = [
    GpuGeneration::A100,
    GpuGeneration::H200,
    GpuGeneration::B200,
];

/// All NVS domain sizes studied.
pub const ALL_NVS_SIZES: [NvsSize; 3] = [NvsSize::Nvs4, NvsSize::Nvs8, NvsSize::Nvs64];

impl NvsSize {
    /// Number of GPUs in the domain.
    pub fn gpus(self) -> u64 {
        match self {
            NvsSize::Nvs4 => 4,
            NvsSize::Nvs8 => 8,
            NvsSize::Nvs64 => 64,
        }
    }
}

impl GpuGeneration {
    /// Short name as used in figure legends.
    pub fn name(self) -> &'static str {
        match self {
            GpuGeneration::A100 => "A100",
            GpuGeneration::H200 => "H200",
            GpuGeneration::B200 => "B200",
        }
    }

    /// GPU characteristics from paper Table A3.
    pub fn gpu(self) -> GpuSpec {
        match self {
            GpuGeneration::A100 => GpuSpec {
                name: "A100".into(),
                tensor_flops: 312e12,
                vector_flops: 78e12,
                flops_latency: 2e-5,
                hbm_bandwidth: 1555e9,
                hbm_capacity: 80e9,
            },
            GpuGeneration::H200 => GpuSpec {
                name: "H200".into(),
                tensor_flops: 990e12,
                vector_flops: 134e12,
                flops_latency: 2e-5,
                hbm_bandwidth: 4800e9,
                hbm_capacity: 141e9,
            },
            GpuGeneration::B200 => GpuSpec {
                name: "B200".into(),
                tensor_flops: 2500e12,
                vector_flops: 339e12,
                flops_latency: 2e-5,
                hbm_bandwidth: 8000e9,
                hbm_capacity: 192e9,
            },
        }
    }

    /// Network characteristics from paper Table A3: each generation is
    /// coupled to its NVLink generation and ConnectX NIC generation.
    pub fn network(self) -> NetworkSpec {
        let (nvs_bw, ib_bw) = match self {
            GpuGeneration::A100 => (300e9, 25e9),
            GpuGeneration::H200 => (450e9, 50e9),
            GpuGeneration::B200 => (900e9, 100e9),
        };
        NetworkSpec {
            nvs_bandwidth: nvs_bw,
            nvs_latency: 2.5e-6,
            ib_bandwidth: ib_bw,
            ib_latency: 5e-6,
            bandwidth_efficiency: 0.7,
        }
    }
}

/// Builds one of the nine systems studied in the paper
/// (3 GPU generations × 3 NVS domain sizes), e.g. `"B200-NVS8"`.
///
/// The paper assumes one NIC per GPU, so `nics_per_node == nvs_size`.
pub fn system(gen: GpuGeneration, nvs: NvsSize) -> SystemSpec {
    let nvs_gpus = nvs.gpus();
    SystemSpec {
        name: format!("{}-NVS{}", gen.name(), nvs_gpus),
        gpu: gen.gpu(),
        network: gen.network(),
        nvs_size: nvs_gpus,
        nics_per_node: nvs_gpus,
        reliability: ReliabilitySpec::datacenter(),
    }
}

/// A Perlmutter-like A100 partition (paper §IV Empirical Validation and
/// Fig. A1): 4 A100s per node, all-to-all NVLink inside the node, 4
/// SlingShot NICs per node at IB-class bandwidth.
///
/// Perlmutter has no NVSwitch; the paper derives an equivalent fast-domain
/// bandwidth from the number of NVLinks engaged. With all 4 GPUs of a node
/// participating, 12 NVLinks/GPU-pair-group yield roughly NVLink3-class
/// aggregate bandwidth; we expose `nvlink_gpus` so Fig. A1 can model the
/// NVL2 case (2 GPUs/node ⇒ 4 links ⇒ a third of the bandwidth).
pub fn perlmutter(nvlink_gpus: u64) -> SystemSpec {
    // 25 GB/s per NVLink3 link direction; a GPU talking to (g-1) peers in
    // the clique uses 4*(g-1)... Perlmutter pairs GPUs with 4 links each.
    // Effective per-GPU fast bandwidth when g GPUs of the node participate:
    // 4 links/pair * (g-1) pairs * 25 GB/s.
    let links_per_pair = 4.0;
    let per_link = 25e9;
    let g = nvlink_gpus.max(2) as f64;
    let fast_bw = links_per_pair * (g - 1.0) * per_link;
    SystemSpec {
        name: format!("Perlmutter-NVL{}", nvlink_gpus),
        gpu: GpuGeneration::A100.gpu(),
        network: NetworkSpec {
            nvs_bandwidth: fast_bw,
            nvs_latency: 2.5e-6,
            ib_bandwidth: 25e9,
            ib_latency: 5e-6,
            bandwidth_efficiency: 0.7,
        },
        nvs_size: nvlink_gpus,
        // One SlingShot NIC per participating GPU (4 per node total).
        nics_per_node: nvlink_gpus.min(4),
        reliability: ReliabilitySpec::datacenter(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_a3_values() {
        let a = GpuGeneration::A100.gpu();
        assert_eq!(a.tensor_flops, 312e12);
        assert_eq!(a.vector_flops, 78e12);
        assert_eq!(a.hbm_bandwidth, 1555e9);
        assert_eq!(a.hbm_capacity, 80e9);
        let h = GpuGeneration::H200.gpu();
        assert_eq!(h.tensor_flops, 990e12);
        assert_eq!(h.hbm_capacity, 141e9);
        let b = GpuGeneration::B200.gpu();
        assert_eq!(b.tensor_flops, 2500e12);
        assert_eq!(b.hbm_bandwidth, 8000e9);
    }

    #[test]
    fn network_scales_across_generations() {
        // Paper: NVLink and IB bandwidth increase proportionally.
        let a = GpuGeneration::A100.network();
        let b = GpuGeneration::B200.network();
        assert!((b.nvs_bandwidth / a.nvs_bandwidth - 3.0).abs() < 1e-9);
        assert!((b.ib_bandwidth / a.ib_bandwidth - 4.0).abs() < 1e-9);
    }

    #[test]
    fn system_names_follow_legend_format() {
        assert_eq!(system(GpuGeneration::B200, NvsSize::Nvs8).name, "B200-NVS8");
        assert_eq!(
            system(GpuGeneration::A100, NvsSize::Nvs64).name,
            "A100-NVS64"
        );
    }

    #[test]
    fn nine_systems_are_distinct() {
        let mut names = std::collections::HashSet::new();
        for g in ALL_GENERATIONS {
            for s in ALL_NVS_SIZES {
                names.insert(system(g, s).name);
            }
        }
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn perlmutter_nvl4_has_more_fast_bandwidth_than_nvl2() {
        let p4 = perlmutter(4);
        let p2 = perlmutter(2);
        assert!(p4.network.nvs_bandwidth > p2.network.nvs_bandwidth);
        assert_eq!(p4.nics_per_node, 4);
        assert_eq!(p2.nics_per_node, 2);
    }

    #[test]
    fn nvs_size_gpus() {
        assert_eq!(NvsSize::Nvs4.gpus(), 4);
        assert_eq!(NvsSize::Nvs8.gpus(), 8);
        assert_eq!(NvsSize::Nvs64.gpus(), 64);
    }
}
