//! Accelerator (GPU) characteristics.

use serde::{Deserialize, Serialize};

/// Per-GPU compute and memory characteristics (paper Table A3).
///
/// All rates are *peak* hardware rates; the roofline model in `perfmodel`
/// converts operation FLOP/byte counts into time using these peaks plus the
/// fixed `flops_latency` term that models small-matrix launch inefficiency
/// (paper: `t = t_sf + λf/λfh`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100"`.
    pub name: String,
    /// Peak FP16 tensor-core rate in FLOPs/s (used for matrix multiplies).
    pub tensor_flops: f64,
    /// Peak FP16 vector rate in FLOPs/s (used for LN/Softmax/GeLU/etc.).
    pub vector_flops: f64,
    /// Fixed per-operation launch/ramp latency in seconds (`t_sf`).
    pub flops_latency: f64,
    /// Peak HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: f64,
}

impl GpuSpec {
    /// HBM capacity in GiB-ish gigabytes (decimal GB, as the paper quotes).
    pub fn hbm_capacity_gb(&self) -> f64 {
        self.hbm_capacity / 1e9
    }

    /// Returns a copy with a scaled tensor-core and vector FLOP rate.
    ///
    /// Used by the Fig. A5 co-design sweep, which scales compute speed and
    /// memory independently. Vector rate is scaled by the same factor so the
    /// tensor:vector ratio of the generation is preserved.
    pub fn with_flops_scale(mut self, scale: f64) -> Self {
        self.tensor_flops *= scale;
        self.vector_flops *= scale;
        self
    }

    /// Returns a copy with the given tensor-core rate (FLOPs/s), scaling the
    /// vector rate proportionally.
    pub fn with_tensor_flops(self, tensor_flops: f64) -> Self {
        let scale = tensor_flops / self.tensor_flops;
        self.with_flops_scale(scale)
    }

    /// Returns a copy with the given HBM capacity in bytes.
    pub fn with_hbm_capacity(mut self, bytes: f64) -> Self {
        self.hbm_capacity = bytes;
        self
    }

    /// Returns a copy with the given HBM bandwidth in bytes/s.
    pub fn with_hbm_bandwidth(mut self, bytes_per_s: f64) -> Self {
        self.hbm_bandwidth = bytes_per_s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> GpuSpec {
        crate::catalog::GpuGeneration::A100.gpu()
    }

    #[test]
    fn capacity_gb_matches_table_a3() {
        assert!((a100().hbm_capacity_gb() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn flops_scale_preserves_ratio() {
        let g = a100();
        let ratio = g.tensor_flops / g.vector_flops;
        let g2 = g.with_flops_scale(3.5);
        assert!((g2.tensor_flops / g2.vector_flops - ratio).abs() < 1e-9);
        assert!((g2.tensor_flops - 312e12 * 3.5).abs() < 1.0);
    }

    #[test]
    fn with_tensor_flops_sets_exact_rate() {
        let g = a100().with_tensor_flops(1000e12);
        assert!((g.tensor_flops - 1000e12).abs() < 1.0);
    }
}
