//! Serializable figure/table artifacts (the regenerable experiment
//! outputs recorded in EXPERIMENTS.md).

use crate::table::Table;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One regenerated paper artifact: an identifier (e.g. `"fig4a"`), a
/// title, column names and data rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// Stable identifier the output files are named after (e.g. `"fig4a"`).
    pub id: String,
    /// Human-readable caption printed above the rendered table.
    pub title: String,
    /// Column names, in display order.
    pub columns: Vec<String>,
    /// Data rows; each row has one JSON value per column.
    pub rows: Vec<Vec<Value>>,
}

impl Artifact {
    /// Creates an empty artifact.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (width-checked).
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(row);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut t = Table::new(self.columns.iter().map(String::as_str));
        for row in &self.rows {
            t.push(row.iter().map(|v| match v {
                Value::String(s) => s.clone(),
                Value::Number(n) => {
                    // Trim long floats for display.
                    if let Some(f) = n.as_f64() {
                        if f.fract() == 0.0 && f.abs() < 1e15 {
                            format!("{}", f as i64)
                        } else {
                            format!("{f:.4}")
                        }
                    } else {
                        n.to_string()
                    }
                }
                other => other.to_string(),
            }));
        }
        format!("== {} — {} ==\n{}", self.id, self.title, t.render())
    }

    /// Writes `<dir>/<id>.json` and `<dir>/<id>.csv`; returns both paths.
    pub fn write(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("{}.json", self.id));
        std::fs::write(&json_path, serde_json::to_string_pretty(self)?)?;
        let csv_path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(&csv_path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::String(s) => {
                        if s.contains(',') {
                            format!("\"{s}\"")
                        } else {
                            s.clone()
                        }
                    }
                    other => other.to_string(),
                })
                .collect();
            writeln!(f, "{}", cells.join(","))?;
        }
        Ok((json_path, csv_path))
    }
}

/// Convenience: a JSON number from an f64 (NaN/∞ become null).
pub fn num(v: f64) -> Value {
    serde_json::Number::from_f64(v)
        .map(Value::Number)
        .unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample() -> Artifact {
        let mut a = Artifact::new("figx", "test artifact", ["n", "time"]);
        a.push(vec![json!(128), json!(1.5)]);
        a.push(vec![json!(256), json!(0.75)]);
        a
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("figx"));
        assert!(s.contains("128"));
        assert!(s.contains("0.75"));
    }

    #[test]
    fn write_and_reload() {
        let dir = std::env::temp_dir().join("fmperf-artifact-test");
        let (json_path, csv_path) = sample().write(&dir).unwrap();
        let back: Artifact =
            serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(back, sample());
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("n,time\n"));
        assert_eq!(csv.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_quotes_commas() {
        let mut a = Artifact::new("q", "quoting", ["s"]);
        a.push(vec![json!("a,b")]);
        let dir = std::env::temp_dir().join("fmperf-artifact-quote");
        let (_, csv_path) = a.write(&dir).unwrap();
        assert!(std::fs::read_to_string(csv_path)
            .unwrap()
            .contains("\"a,b\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn bad_row_panics() {
        let mut a = Artifact::new("x", "t", ["a", "b"]);
        a.push(vec![json!(1)]);
    }

    #[test]
    fn num_handles_nan() {
        assert_eq!(num(f64::NAN), Value::Null);
        assert_eq!(num(2.0), json!(2.0));
    }
}
