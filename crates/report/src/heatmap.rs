//! ASCII heatmaps for the co-design grid figures (paper Figs. A5/A6).

/// Shade ramp from low to high.
const RAMP: [char; 6] = [' ', '░', '▒', '▓', '█', '█'];

/// Renders `(x, y, value)` triples as a shaded grid. Axes are the sorted
/// distinct x/y values; missing cells (e.g. infeasible points) show `·`.
/// Lower values shade lighter, so for days-to-train plots darker = worse.
pub fn heatmap(points: &[(f64, f64, Option<f64>)], x_label: &str, y_label: &str) -> String {
    let mut xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let mut ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    if xs.is_empty() || ys.is_empty() {
        return String::new();
    }
    let vals: Vec<f64> = points.iter().filter_map(|p| p.2).collect();
    let (lo, hi) = vals
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let shade = |v: f64| -> char {
        if hi <= lo {
            return RAMP[2];
        }
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        RAMP[(t * (RAMP.len() - 2) as f64).round() as usize]
    };
    let lookup = |x: f64, y: f64| -> Option<f64> {
        points
            .iter()
            .find(|p| p.0 == x && p.1 == y)
            .and_then(|p| p.2)
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{y_label} ↑ (rows high→low), {x_label} → (cols low→high); range {lo:.2}–{hi:.2}\n"
    ));
    for &y in ys.iter().rev() {
        out.push_str(&format!("{y:>10.2} |"));
        for &x in &xs {
            match lookup(x, y) {
                Some(v) => {
                    let c = shade(v);
                    out.push(c);
                    out.push(c);
                }
                None => out.push_str("··"),
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "--".repeat(xs.len())));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_full_grid() {
        let pts = vec![
            (1.0, 1.0, Some(0.0)),
            (2.0, 1.0, Some(5.0)),
            (1.0, 2.0, Some(10.0)),
            (2.0, 2.0, None),
        ];
        let s = heatmap(&pts, "cap", "bw");
        assert!(s.contains("··"), "missing cell marker");
        assert!(s.contains('█'), "max shade present");
        assert_eq!(s.lines().count(), 4); // header + 2 rows + axis
    }

    #[test]
    fn constant_field_does_not_panic() {
        let pts = vec![(1.0, 1.0, Some(3.0)), (2.0, 1.0, Some(3.0))];
        let s = heatmap(&pts, "x", "y");
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_input_is_empty() {
        assert_eq!(heatmap(&[], "x", "y"), "");
    }
}
