//! Column-aligned plain-text tables.

/// A simple right-padded text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the header count.
    pub fn push<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header underline.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.push(["a", "1"]);
        t.push(["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        // All data lines align the second column.
        let col = lines[2].find("1").unwrap();
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push(["1"]);
        assert_eq!(t.len(), 1);
    }
}
