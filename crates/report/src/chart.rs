//! ASCII charts for terminal rendering of the paper's figures.

/// A horizontal bar of `width` cells filled proportionally to
/// `value / max` (clamped).
pub fn hbar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 || width == 0 {
        return " ".repeat(width);
    }
    let frac = (value / max).clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    format!(
        "{}{}",
        "█".repeat(filled),
        " ".repeat(width - filled.min(width))
    )
}

/// A stacked percentage bar: each `(label_char, fraction)` segment fills
/// its share of `width` cells with its label character. Fractions are
/// normalized if they do not sum to 1.
pub fn stacked_bar(segments: &[(char, f64)], width: usize) -> String {
    let total: f64 = segments.iter().map(|(_, f)| f.max(0.0)).sum();
    if total <= 0.0 || width == 0 {
        return " ".repeat(width);
    }
    let mut out = String::with_capacity(width);
    let mut acc = 0.0;
    let mut drawn = 0usize;
    for (c, f) in segments {
        acc += f.max(0.0) / total;
        let upto = (acc * width as f64).round() as usize;
        for _ in drawn..upto.min(width) {
            out.push(*c);
        }
        drawn = drawn.max(upto.min(width));
    }
    while out.chars().count() < width {
        out.push(' ');
    }
    out
}

/// A log-ish multi-series chart rendered as rows of `label: value bar`,
/// one row per (series, x) pair — practical for terminal inspection of
/// Fig. 5-style scaling curves.
pub fn series_chart(series: &[(String, Vec<(f64, f64)>)], width: usize) -> String {
    let max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|(_, y)| *y))
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    for (name, pts) in series {
        for (x, y) in pts {
            out.push_str(&format!(
                "{name:>14} @ {x:>8}: {:>10.3} |{}\n",
                y,
                hbar(*y, max, width)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbar_extremes() {
        assert_eq!(hbar(0.0, 10.0, 4), "    ");
        assert_eq!(hbar(10.0, 10.0, 4), "████");
        assert_eq!(hbar(5.0, 10.0, 4), "██  ");
        assert_eq!(hbar(20.0, 10.0, 4), "████"); // clamped
    }

    #[test]
    fn stacked_bar_fills_width() {
        let bar = stacked_bar(&[('C', 0.5), ('T', 0.3), ('B', 0.2)], 10);
        assert_eq!(bar.chars().count(), 10);
        assert_eq!(bar.chars().filter(|&c| c == 'C').count(), 5);
        assert_eq!(bar.chars().filter(|&c| c == 'T').count(), 3);
    }

    #[test]
    fn stacked_bar_normalizes() {
        let a = stacked_bar(&[('a', 2.0), ('b', 2.0)], 8);
        assert_eq!(a.chars().filter(|&c| c == 'a').count(), 4);
    }

    #[test]
    fn zero_cases() {
        assert_eq!(stacked_bar(&[], 5), "     ");
        assert_eq!(hbar(1.0, 0.0, 3), "   ");
    }

    #[test]
    fn series_chart_contains_all_points() {
        let s = vec![("sys".to_string(), vec![(128.0, 1.0), (256.0, 2.0)])];
        let out = series_chart(&s, 10);
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("sys"));
    }
}
