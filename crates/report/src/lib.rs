//! Reporting utilities: aligned tables, ASCII bar charts and
//! CSV/JSON artifact emission for the paper-figure regeneration harness.

mod artifact;
mod chart;
mod heatmap;
mod table;

pub use artifact::{num, Artifact};
pub use chart::{hbar, series_chart, stacked_bar};
pub use heatmap::heatmap;
pub use table::Table;
