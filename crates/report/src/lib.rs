//! Reporting utilities: aligned tables, ASCII bar charts/heatmaps and
//! CSV/JSON artifact emission.
//!
//! This crate is deliberately dependency-free plumbing shared by the two
//! output surfaces of the workspace: the planner examples print [`Table`]s
//! and charts to the terminal, and the `paperbench` figure generators
//! produce [`Artifact`]s (an id + column schema + JSON rows) that the
//! `figures` binary renders and persists to `out/<id>.{json,csv}` — the
//! regeneration record every bench run replays.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod artifact;
mod chart;
mod heatmap;
mod table;

pub use artifact::{num, Artifact};
pub use chart::{hbar, series_chart, stacked_bar};
pub use heatmap::heatmap;
pub use table::Table;
