//! Transformer architecture description and FLOP/byte census primitives.
//!
//! This crate models the *workload* side of the paper's performance model:
//! the transformer block (self-attention + MLP, paper §III), the model
//! classes studied — dense LLMs ([`gpt3_1t`], [`gpt3_175b`]), long-sequence
//! scientific ViTs ([`vit_64k`], [`vit_32k`], the [`vit_multimodal`]
//! image+text variant) and sparsely-activated Mixture-of-Experts models
//! ([`moe_1t`], [`gpt3_175b_moe`], via [`MoeConfig`]) — and the
//! first-principles operation census: FLOPs and HBM bytes for the matrix
//! multiply primitive and the simpler vector operations (paper stage S1).
//!
//! MoE configurations describe the router (an `e×E` gate), top-`k`
//! dispatch and the Switch/GLaM capacity-factor discipline; how those
//! tokens are sharded across GPUs (tensor/pipeline/data/**expert**
//! parallelism) lives in the `perfmodel` crate — this crate stays
//! strategy agnostic. [`TrainingWorkload`] converts per-iteration times
//! into full-run wall-clock days (paper Fig. 5); [`InferenceConfig`]
//! describes the *serving* side of the same models — prompt/output
//! length mixes, offered request rates and the continuous-batching
//! ceiling (priced by `perfmodel::serving`, replayed by `servesim`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod inference;
mod ops;
mod presets;
mod workload;

pub use config::{MoeConfig, TransformerConfig};
pub use inference::{
    gpt3_175b_chat, moe_1t_chat, vit_multimodal_serving, InferenceConfig, LengthMix, ServingPreset,
    LONG_PCT,
};
pub use ops::{gemm, vector_op, MatmulShape, OpCost, VectorOpKind, BYTES_PER_ELEM};
pub use presets::{
    gpt3_175b, gpt3_175b_moe, gpt3_1t, moe_1t, vit_32k, vit_64k, vit_64k_linear_attention,
    vit_multimodal, Preset,
};
pub use workload::{TrainingWorkload, ERA5_SAMPLES_PER_YEAR};

#[cfg(test)]
mod serde_roundtrip {
    use super::*;

    #[test]
    fn config_and_workload_survive_json() {
        let preset = gpt3_175b();
        let json = serde_json::to_string(&preset.config).unwrap();
        let back: TransformerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, preset.config);
        assert_eq!(back.total_params(), preset.config.total_params());

        let workload = TrainingWorkload::from_token_budget(1e12, 4096, preset.config.seq_len);
        let json = serde_json::to_string(&workload).unwrap();
        let back: TrainingWorkload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, workload);
    }

    #[test]
    fn inference_config_survives_json() {
        for preset in [gpt3_175b_chat(), moe_1t_chat(), vit_multimodal_serving()] {
            let json = serde_json::to_string(&preset.traffic).unwrap();
            let back: InferenceConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, preset.traffic);
            assert_eq!(back.request_rate(), preset.traffic.request_rate());
            assert_eq!(back.p99_context(), preset.traffic.p99_context());
        }
        let mix: LengthMix =
            serde_json::from_str(&serde_json::to_string(&LengthMix::new(3, 9)).unwrap()).unwrap();
        assert_eq!(mix, LengthMix::new(3, 9));
    }

    #[test]
    fn moe_config_survives_json() {
        // The Option<MoeConfig> field must round-trip both ways: None
        // (dense presets) and Some (MoE presets).
        let dense = gpt3_175b().config;
        let back: TransformerConfig =
            serde_json::from_str(&serde_json::to_string(&dense).unwrap()).unwrap();
        assert_eq!(back, dense);
        assert!(back.moe.is_none());

        let moe = moe_1t().config;
        let back: TransformerConfig =
            serde_json::from_str(&serde_json::to_string(&moe).unwrap()).unwrap();
        assert_eq!(back, moe);
        assert_eq!(back.moe, moe.moe);
        assert_eq!(back.total_params(), moe.total_params());
    }

    #[test]
    fn op_types_survive_json() {
        let cost = gemm(128, 512, 256);
        let back: OpCost = serde_json::from_str(&serde_json::to_string(&cost).unwrap()).unwrap();
        assert_eq!(back, cost);

        let shape = MatmulShape {
            m: 1,
            k: 2,
            n: 3,
            batch: 4,
        };
        let back: MatmulShape =
            serde_json::from_str(&serde_json::to_string(&shape).unwrap()).unwrap();
        assert_eq!(back, shape);
    }
}
