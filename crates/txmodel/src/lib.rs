//! Transformer architecture description and FLOP/byte census primitives.
//!
//! This crate models the *workload* side of the paper's performance model:
//! the transformer block (self-attention + MLP, paper §III), the two model
//! classes studied (GPT3-1T and the long-sequence scientific ViT), and the
//! first-principles operation census — FLOPs and HBM bytes for the matrix
//! multiply primitive and the simpler vector operations (paper stage S1).
//!
//! Partitioning these operations across GPUs (tensor/pipeline/data
//! parallelism) lives in the `perfmodel` crate; this crate is strategy
//! agnostic.

mod config;
mod ops;
mod presets;
mod workload;

pub use config::TransformerConfig;
pub use ops::{gemm, vector_op, MatmulShape, OpCost, VectorOpKind, BYTES_PER_ELEM};
pub use presets::{gpt3_175b, gpt3_1t, vit_32k, vit_64k, vit_64k_linear_attention, Preset};
pub use workload::{TrainingWorkload, ERA5_SAMPLES_PER_YEAR};
