//! FLOP and HBM-byte census for the primitive operations (paper S1).
//!
//! Most transformer time is spent in the matrix-multiply primitive
//! `C = A·B` with `C ∈ R^{m×n}`, `A ∈ R^{m×k}`, `B ∈ R^{k×n}`:
//!
//! * FLOPs: `λf = (2k − 1)·m·n`
//! * HBM bytes: `λm = 2(mk + kn + mn)` at FP16 (2 bytes/element)
//!
//! Vector operations (LayerNorm, Softmax, GeLU, residual add, bias add) use
//! documented per-element FLOP factors and stream their operands once.

use serde::{Deserialize, Serialize};

/// Bytes per element under FP16 mixed-precision training.
pub const BYTES_PER_ELEM: f64 = 2.0;

/// FLOPs and HBM traffic of a single device-local operation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from HBM.
    pub bytes: f64,
}

impl OpCost {
    /// Element-wise sum of two costs.
    pub fn plus(self, other: OpCost) -> OpCost {
        OpCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Cost scaled by a constant factor (e.g. backward ≈ 2× forward).
    pub fn scaled(self, k: f64) -> OpCost {
        OpCost {
            flops: self.flops * k,
            bytes: self.bytes * k,
        }
    }

    /// Arithmetic intensity in FLOPs/byte (∞ when no bytes are moved).
    pub fn intensity(self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

/// Shape of a (possibly batched) GEMM `C[m×n] = A[m×k] · B[k×n]`,
/// repeated `batch` times (e.g. per attention head).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatmulShape {
    /// Rows of `A` and `C`.
    pub m: u64,
    /// Shared inner dimension.
    pub k: u64,
    /// Columns of `B` and `C`.
    pub n: u64,
    /// Number of independent GEMMs (e.g. one per attention head).
    pub batch: u64,
}

impl MatmulShape {
    /// Unbatched GEMM shape.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        Self { m, k, n, batch: 1 }
    }

    /// Batched GEMM shape (`batch` independent m×k×n products).
    pub fn batched(batch: u64, m: u64, k: u64, n: u64) -> Self {
        Self { m, k, n, batch }
    }

    /// Total FLOPs `batch·(2k−1)·m·n`.
    pub fn flops(&self) -> f64 {
        self.batch as f64 * (2.0 * self.k as f64 - 1.0) * self.m as f64 * self.n as f64
    }

    /// HBM bytes `batch·2·(mk + kn + mn)` at FP16, counting each operand
    /// streamed exactly once (the cuBLAS ideal).
    pub fn bytes(&self) -> f64 {
        self.batch as f64
            * BYTES_PER_ELEM
            * (self.m as f64 * self.k as f64
                + self.k as f64 * self.n as f64
                + self.m as f64 * self.n as f64)
    }

    /// Combined census for this GEMM.
    pub fn cost(&self) -> OpCost {
        OpCost {
            flops: self.flops(),
            bytes: self.bytes(),
        }
    }
}

/// Census for a GEMM (convenience wrapper over [`MatmulShape::cost`]).
pub fn gemm(m: u64, k: u64, n: u64) -> OpCost {
    MatmulShape::new(m, k, n).cost()
}

/// Vector (non-GEMM) operation classes and their per-element FLOP factors.
///
/// These factors are first-order models of the arithmetic in each kernel;
/// they matter only for the memory-bound vector-op time (`bytes` dominates
/// under the roofline), so modest inaccuracies are inconsequential — the
/// same simplification the paper makes ("similar expressions can be
/// derived for LN, SM, GELU and Dropout, which are simpler than matrix
/// multiplication").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorOpKind {
    /// LayerNorm: mean, variance, normalize, scale, shift ≈ 5 FLOPs/elem.
    LayerNorm,
    /// Softmax: max-subtract, exp, sum, divide ≈ 5 FLOPs/elem.
    Softmax,
    /// GeLU (tanh approximation) ≈ 8 FLOPs/elem.
    Gelu,
    /// Residual/bias add: 1 FLOP/elem.
    Add,
    /// Dropout mask-and-scale: 2 FLOPs/elem (modeled when enabled).
    Dropout,
}

impl VectorOpKind {
    /// FLOPs per element of the output tensor.
    pub fn flops_per_elem(self) -> f64 {
        match self {
            VectorOpKind::LayerNorm => 5.0,
            VectorOpKind::Softmax => 5.0,
            VectorOpKind::Gelu => 8.0,
            VectorOpKind::Add => 1.0,
            VectorOpKind::Dropout => 2.0,
        }
    }

    /// Streamed tensors (in units of the element count): LN/SM/GeLU/Dropout
    /// read one tensor and write one; Add reads two and writes one.
    pub fn streams(self) -> f64 {
        match self {
            VectorOpKind::Add => 3.0,
            _ => 2.0,
        }
    }
}

/// Census for a vector op over `elems` output elements.
pub fn vector_op(kind: VectorOpKind, elems: u64) -> OpCost {
    OpCost {
        flops: kind.flops_per_elem() * elems as f64,
        bytes: kind.streams() * BYTES_PER_ELEM * elems as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_formula() {
        // λf = (2k−1)mn
        let c = gemm(4, 8, 16);
        assert_eq!(c.flops, (2.0 * 8.0 - 1.0) * 4.0 * 16.0);
    }

    #[test]
    fn gemm_bytes_formula() {
        // λm = 2(mk + kn + mn)
        let c = gemm(4, 8, 16);
        assert_eq!(c.bytes, 2.0 * (4.0 * 8.0 + 8.0 * 16.0 + 4.0 * 16.0));
    }

    #[test]
    fn batched_gemm_scales_linearly() {
        let single = MatmulShape::new(64, 64, 64).cost();
        let batched = MatmulShape::batched(8, 64, 64, 64).cost();
        assert_eq!(batched.flops, 8.0 * single.flops);
        assert_eq!(batched.bytes, 8.0 * single.bytes);
    }

    #[test]
    fn square_gemm_intensity_grows_with_size() {
        // Arithmetic intensity of an n³ GEMM grows ~n/3: big GEMMs are
        // compute-bound, small ones memory-bound. This ordering is what
        // makes the SUMMA panel-size (nb) trade-off exist.
        let small = gemm(64, 64, 64).intensity();
        let large = gemm(4096, 4096, 4096).intensity();
        assert!(large > 10.0 * small);
    }

    #[test]
    fn vector_ops_are_low_intensity() {
        for kind in [
            VectorOpKind::LayerNorm,
            VectorOpKind::Softmax,
            VectorOpKind::Gelu,
            VectorOpKind::Add,
            VectorOpKind::Dropout,
        ] {
            let c = vector_op(kind, 1 << 20);
            assert!(c.intensity() < 5.0, "{kind:?} intensity {}", c.intensity());
            assert!(c.flops > 0.0 && c.bytes > 0.0);
        }
    }

    #[test]
    fn add_streams_three_tensors() {
        let c = vector_op(VectorOpKind::Add, 100);
        assert_eq!(c.bytes, 3.0 * BYTES_PER_ELEM * 100.0);
    }

    #[test]
    fn opcost_algebra() {
        let a = OpCost {
            flops: 1.0,
            bytes: 2.0,
        };
        let b = OpCost {
            flops: 3.0,
            bytes: 4.0,
        };
        let s = a.plus(b);
        assert_eq!(s.flops, 4.0);
        assert_eq!(s.bytes, 6.0);
        let d = a.scaled(2.0);
        assert_eq!(d.flops, 2.0);
        assert_eq!(d.bytes, 4.0);
    }

    #[test]
    fn zero_bytes_intensity_is_infinite() {
        let c = OpCost {
            flops: 1.0,
            bytes: 0.0,
        };
        assert!(c.intensity().is_infinite());
    }
}
