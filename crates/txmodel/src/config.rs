//! Transformer architecture hyperparameters and derived counts.

use serde::{Deserialize, Serialize};

/// Sparsely-activated (Mixture-of-Experts) block parameters.
///
/// When present, the dense MLP of every block is replaced by `experts`
/// independent expert FFNs behind a learned router: each token is
/// dispatched to its `top_k` highest-scoring experts, and every expert
/// processes at most `capacity_factor · top_k · tokens / experts` tokens
/// (the Switch/GLaM capacity discipline — overflowing tokens are dropped,
/// underfull slots are padded, so compute and communication are priced at
/// the capacity, not the ideal load).
///
/// The capacity factor is stored in percent (`125` = 1.25×) so the
/// configuration stays `Eq + Hash` (it keys profile caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Number of experts `E` per MoE layer.
    pub experts: u64,
    /// Experts each token is routed to (1 = Switch, 2 = GLaM).
    pub top_k: u64,
    /// Capacity factor in percent: 125 means each expert is provisioned
    /// for 1.25× its ideal share of the dispatched tokens.
    pub capacity_pct: u64,
}

impl MoeConfig {
    /// Capacity factor as a fraction (`capacity_pct / 100`).
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_pct as f64 / 100.0
    }

    /// Average dispatched copies per token: `top_k · capacity_factor`.
    /// Expert compute and AllToAll volumes scale by this factor relative
    /// to a dense MLP over the same tokens.
    pub fn dispatch_factor(&self) -> f64 {
        self.top_k as f64 * self.capacity_factor()
    }
}

/// Transformer architecture hyperparameters (paper §III notation).
///
/// The transformer processes an input `X ∈ R^{b×l×e}` through `depth`
/// repeated blocks of self-attention (S/A) and MLP, each preceded by a
/// LayerNorm. `hidden` is the MLP hidden dimension `f` (typically `4e`);
/// `heads` is the attention head count `h`, with head dimension
/// `e_h = e/h`. An optional [`MoeConfig`] turns the MLP of every block
/// into a sparsely-activated expert layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Sequence length `l` (tokens or image patches).
    pub seq_len: u64,
    /// Embedding dimension `e`.
    pub embed: u64,
    /// MLP hidden dimension `f` (usually `4e`).
    pub hidden: u64,
    /// Number of attention heads `h` (must divide `e`).
    pub heads: u64,
    /// Number of transformer blocks `d`.
    pub depth: u64,
    /// If true, the Logit/Attend stage uses a linear-attention formulation
    /// with `O(l·e_h²)` cost per head instead of `O(l²·e_h)` (paper Outlook
    /// extension; all presets default to false).
    pub linear_attention: bool,
    /// Mixture-of-Experts parameters; `None` is a dense transformer
    /// (every paper preset). `Some` replaces each block's MLP with a
    /// routed expert layer (workload-breadth extension beyond the paper).
    pub moe: Option<MoeConfig>,
}

impl TransformerConfig {
    /// Creates a standard (softmax-attention) configuration.
    ///
    /// # Panics
    /// Panics if `heads` does not divide `embed`, or any dimension is zero.
    pub fn new(seq_len: u64, embed: u64, hidden: u64, heads: u64, depth: u64) -> Self {
        assert!(
            seq_len > 0 && embed > 0 && hidden > 0 && heads > 0 && depth > 0,
            "all transformer dimensions must be positive"
        );
        assert_eq!(
            embed % heads,
            0,
            "heads ({heads}) must divide embed ({embed})"
        );
        Self {
            seq_len,
            embed,
            hidden,
            heads,
            depth,
            linear_attention: false,
            moe: None,
        }
    }

    /// Builder-style MoE upgrade: replaces every block's dense MLP with
    /// `experts` expert FFNs routed top-`top_k` at `capacity_pct`%
    /// capacity.
    ///
    /// # Panics
    /// Panics if `experts < 2`, `top_k` is 0 or exceeds `experts`, or the
    /// capacity factor is below 100%.
    pub fn with_moe(mut self, experts: u64, top_k: u64, capacity_pct: u64) -> Self {
        assert!(experts >= 2, "an MoE layer needs at least 2 experts");
        assert!(
            top_k >= 1 && top_k <= experts,
            "top_k ({top_k}) must be in 1..=experts ({experts})"
        );
        assert!(
            capacity_pct >= 100,
            "capacity factor below 1.0 would drop tokens structurally"
        );
        self.moe = Some(MoeConfig {
            experts,
            top_k,
            capacity_pct,
        });
        self
    }

    /// True for sparsely-activated (MoE) configurations.
    pub fn is_moe(&self) -> bool {
        self.moe.is_some()
    }

    /// Head dimension `e_h = e/h`.
    pub fn head_dim(&self) -> u64 {
        self.embed / self.heads
    }

    /// Parameters of one expert FFN (or of the dense MLP when `E = 1`):
    /// `W_1 ∈ R^{e×f}`, `W_2 ∈ R^{f×e}` plus the two biases.
    fn mlp_expert_params(&self) -> u64 {
        2 * self.embed * self.hidden + self.hidden + self.embed
    }

    /// Learnable parameters in one transformer block.
    ///
    /// S/A: `W_Q, W_K, W_V, W_p ∈ R^{e×e}` → `4e²`; MLP: `W_1 ∈ R^{e×f}`,
    /// `W_2 ∈ R^{f×e}` → `2ef`; biases and LN scales: `2f + 4e` (b1, b2 and
    /// two LN (γ,β) pairs) — the paper's `12e²` per block for `f = 4e`, to
    /// leading order. MoE blocks replace the single MLP with `E` expert
    /// FFNs plus an `e×E` router gate.
    pub fn params_per_block(&self) -> u64 {
        let mlp = match self.moe {
            Some(m) => m.experts * self.mlp_expert_params() + self.embed * m.experts,
            None => self.mlp_expert_params(),
        };
        4 * self.embed * self.embed + mlp + 4 * self.embed
    }

    /// Parameters of one block that every token actually touches: all of
    /// them for a dense block; attention + router + `top_k` expert FFNs
    /// for an MoE block. This is the count the forward-FLOP estimate uses
    /// — MoE decouples it from [`Self::params_per_block`].
    pub fn activated_params_per_block(&self) -> u64 {
        let mlp = match self.moe {
            Some(m) => m.top_k * self.mlp_expert_params() + self.embed * m.experts,
            None => self.mlp_expert_params(),
        };
        4 * self.embed * self.embed + mlp + 4 * self.embed
    }

    /// Total learnable parameters across all blocks.
    ///
    /// Embedding/readout layers are excluded, matching the paper's
    /// block-only accounting (for GPT3-1T the blocks alone are ~1e12
    /// parameters).
    pub fn total_params(&self) -> u64 {
        self.depth * self.params_per_block()
    }

    /// Leading-order forward FLOPs for one sample (all blocks):
    /// `2·P_act·l` for the weight matmuls (activated parameters only —
    /// for MoE, `P_act ≪ P`) plus `4·l²·e` per block for the logit/attend
    /// pair (or the linear-attention equivalent).
    ///
    /// This is the coarse "6N" style estimate used only for sanity checks;
    /// the performance model counts every operation exactly.
    pub fn approx_forward_flops_per_sample(&self) -> f64 {
        let weights =
            2.0 * (self.depth * self.activated_params_per_block()) as f64 * self.seq_len as f64;
        let attn_per_block = if self.linear_attention {
            // Two l×e_h×e_h GEMM chains per head: 4·l·e_h²·h = 4·l·e_h·e.
            4.0 * self.seq_len as f64 * self.head_dim() as f64 * self.embed as f64
        } else {
            4.0 * (self.seq_len as f64).powi(2) * self.embed as f64
        };
        weights + self.depth as f64 * attn_per_block
    }

    /// Ratio of MLP FLOPs to S/A FLOPs per block (forward).
    ///
    /// The paper uses this to characterize model classes: ≈2 for GPT3-1T
    /// (MLP-dominated), ≈0.5 for the 64K-sequence ViT (attention-dominated).
    pub fn mlp_to_sa_flop_ratio(&self) -> f64 {
        let l = self.seq_len as f64;
        let e = self.embed as f64;
        let f = self.hidden as f64;
        let mlp = 2.0 * l * e * f * 2.0; // two GEMMs: l×e×f and l×f×e
        let sa_proj = 2.0 * l * e * e * 4.0; // QKV + output projection
        let sa_la = 4.0 * l * l * e; // QK^T and AV
        mlp / (sa_proj + sa_la)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt() -> TransformerConfig {
        TransformerConfig::new(2048, 25600, 4 * 25600, 160, 128)
    }

    fn vit() -> TransformerConfig {
        TransformerConfig::new(64800, 12288, 4 * 12288, 64, 48)
    }

    #[test]
    fn gpt3_1t_has_a_trillion_params() {
        let p = gpt().total_params() as f64;
        assert!(p > 0.95e12 && p < 1.1e12, "got {p:e}");
    }

    #[test]
    fn head_dim_divides() {
        assert_eq!(gpt().head_dim(), 160);
        assert_eq!(vit().head_dim(), 192);
    }

    #[test]
    fn flop_ratio_separates_model_classes() {
        // Paper: "FLOP ratio of MLP to S/A is roughly 2x" (GPT3-1T) and
        // "roughly 0.5x" (ViT).
        let g = gpt().mlp_to_sa_flop_ratio();
        let v = vit().mlp_to_sa_flop_ratio();
        assert!(g > 1.5 && g < 2.1, "GPT ratio {g}");
        assert!(v > 0.3 && v < 0.7, "ViT ratio {v}");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_heads_panics() {
        let _ = TransformerConfig::new(128, 100, 400, 3, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = TransformerConfig::new(0, 100, 400, 4, 2);
    }

    #[test]
    fn approx_flops_magnitude_gpt() {
        // ~6·P·l per fwd+bwd; forward alone ~2·P·l = 2·1e12·2048 ≈ 4.1e15.
        let f = gpt().approx_forward_flops_per_sample();
        assert!(f > 3e15 && f < 6e15, "got {f:e}");
    }

    #[test]
    fn linear_attention_reduces_flops_for_long_seq() {
        let mut v = vit();
        let quad = v.approx_forward_flops_per_sample();
        v.linear_attention = true;
        let lin = v.approx_forward_flops_per_sample();
        assert!(lin < quad);
    }

    fn moe() -> TransformerConfig {
        TransformerConfig::new(2048, 8192, 4 * 8192, 64, 32).with_moe(64, 1, 125)
    }

    #[test]
    fn moe_total_params_scale_with_experts_but_activated_do_not() {
        let dense = TransformerConfig::new(2048, 8192, 4 * 8192, 64, 32);
        let m = moe();
        // 64 experts ≈ 64× the MLP parameters...
        assert!(m.total_params() > 30 * dense.total_params());
        // ...but a top-1 router activates roughly the dense count.
        let act = m.depth * m.activated_params_per_block();
        let ratio = act as f64 / dense.total_params() as f64;
        assert!(ratio > 0.95 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    fn moe_forward_flops_track_activated_params() {
        let dense = TransformerConfig::new(2048, 8192, 4 * 8192, 64, 32);
        let m = moe();
        let ratio = m.approx_forward_flops_per_sample() / dense.approx_forward_flops_per_sample();
        // Top-1 routing: ~same FLOPs as dense despite 64× the weights
        // (the router gate adds a small e·E term).
        assert!(ratio > 0.95 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn moe_capacity_and_dispatch_factors() {
        let m = moe().moe.unwrap();
        assert!((m.capacity_factor() - 1.25).abs() < 1e-12);
        assert!((m.dispatch_factor() - 1.25).abs() < 1e-12);
        let glam = MoeConfig {
            experts: 64,
            top_k: 2,
            capacity_pct: 100,
        };
        assert!((glam.dispatch_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn moe_top_k_must_not_exceed_experts() {
        let _ = TransformerConfig::new(128, 256, 1024, 4, 2).with_moe(4, 5, 100);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn moe_capacity_below_one_panics() {
        let _ = TransformerConfig::new(128, 256, 1024, 4, 2).with_moe(4, 1, 50);
    }
}
