//! Transformer architecture hyperparameters and derived counts.

use serde::{Deserialize, Serialize};

/// Transformer architecture hyperparameters (paper §III notation).
///
/// The transformer processes an input `X ∈ R^{b×l×e}` through `depth`
/// repeated blocks of self-attention (S/A) and MLP, each preceded by a
/// LayerNorm. `hidden` is the MLP hidden dimension `f` (typically `4e`);
/// `heads` is the attention head count `h`, with head dimension
/// `e_h = e/h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Sequence length `l` (tokens or image patches).
    pub seq_len: u64,
    /// Embedding dimension `e`.
    pub embed: u64,
    /// MLP hidden dimension `f` (usually `4e`).
    pub hidden: u64,
    /// Number of attention heads `h` (must divide `e`).
    pub heads: u64,
    /// Number of transformer blocks `d`.
    pub depth: u64,
    /// If true, the Logit/Attend stage uses a linear-attention formulation
    /// with `O(l·e_h²)` cost per head instead of `O(l²·e_h)` (paper Outlook
    /// extension; all presets default to false).
    pub linear_attention: bool,
}

impl TransformerConfig {
    /// Creates a standard (softmax-attention) configuration.
    ///
    /// # Panics
    /// Panics if `heads` does not divide `embed`, or any dimension is zero.
    pub fn new(seq_len: u64, embed: u64, hidden: u64, heads: u64, depth: u64) -> Self {
        assert!(
            seq_len > 0 && embed > 0 && hidden > 0 && heads > 0 && depth > 0,
            "all transformer dimensions must be positive"
        );
        assert_eq!(
            embed % heads,
            0,
            "heads ({heads}) must divide embed ({embed})"
        );
        Self {
            seq_len,
            embed,
            hidden,
            heads,
            depth,
            linear_attention: false,
        }
    }

    /// Head dimension `e_h = e/h`.
    pub fn head_dim(&self) -> u64 {
        self.embed / self.heads
    }

    /// Learnable parameters in one transformer block.
    ///
    /// S/A: `W_Q, W_K, W_V, W_p ∈ R^{e×e}` → `4e²`; MLP: `W_1 ∈ R^{e×f}`,
    /// `W_2 ∈ R^{f×e}` → `2ef`; biases and LN scales: `2f + 4e` (b1, b2 and
    /// two LN (γ,β) pairs) — the paper's `12e²` per block for `f = 4e`, to
    /// leading order.
    pub fn params_per_block(&self) -> u64 {
        4 * self.embed * self.embed
            + 2 * self.embed * self.hidden
            + self.hidden
            + self.embed
            + 4 * self.embed
    }

    /// Total learnable parameters across all blocks.
    ///
    /// Embedding/readout layers are excluded, matching the paper's
    /// block-only accounting (for GPT3-1T the blocks alone are ~1e12
    /// parameters).
    pub fn total_params(&self) -> u64 {
        self.depth * self.params_per_block()
    }

    /// Leading-order forward FLOPs for one sample (all blocks):
    /// `2·P·l` for the weight matmuls plus `4·l²·e` per block for the
    /// logit/attend pair (or the linear-attention equivalent).
    ///
    /// This is the coarse "6N" style estimate used only for sanity checks;
    /// the performance model counts every operation exactly.
    pub fn approx_forward_flops_per_sample(&self) -> f64 {
        let weights = 2.0 * self.total_params() as f64 * self.seq_len as f64;
        let attn_per_block = if self.linear_attention {
            // Two l×e_h×e_h GEMM chains per head: 4·l·e_h²·h = 4·l·e_h·e.
            4.0 * self.seq_len as f64 * self.head_dim() as f64 * self.embed as f64
        } else {
            4.0 * (self.seq_len as f64).powi(2) * self.embed as f64
        };
        weights + self.depth as f64 * attn_per_block
    }

    /// Ratio of MLP FLOPs to S/A FLOPs per block (forward).
    ///
    /// The paper uses this to characterize model classes: ≈2 for GPT3-1T
    /// (MLP-dominated), ≈0.5 for the 64K-sequence ViT (attention-dominated).
    pub fn mlp_to_sa_flop_ratio(&self) -> f64 {
        let l = self.seq_len as f64;
        let e = self.embed as f64;
        let f = self.hidden as f64;
        let mlp = 2.0 * l * e * f * 2.0; // two GEMMs: l×e×f and l×f×e
        let sa_proj = 2.0 * l * e * e * 4.0; // QKV + output projection
        let sa_la = 4.0 * l * l * e; // QK^T and AV
        mlp / (sa_proj + sa_la)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt() -> TransformerConfig {
        TransformerConfig::new(2048, 25600, 4 * 25600, 160, 128)
    }

    fn vit() -> TransformerConfig {
        TransformerConfig::new(64800, 12288, 4 * 12288, 64, 48)
    }

    #[test]
    fn gpt3_1t_has_a_trillion_params() {
        let p = gpt().total_params() as f64;
        assert!(p > 0.95e12 && p < 1.1e12, "got {p:e}");
    }

    #[test]
    fn head_dim_divides() {
        assert_eq!(gpt().head_dim(), 160);
        assert_eq!(vit().head_dim(), 192);
    }

    #[test]
    fn flop_ratio_separates_model_classes() {
        // Paper: "FLOP ratio of MLP to S/A is roughly 2x" (GPT3-1T) and
        // "roughly 0.5x" (ViT).
        let g = gpt().mlp_to_sa_flop_ratio();
        let v = vit().mlp_to_sa_flop_ratio();
        assert!(g > 1.5 && g < 2.1, "GPT ratio {g}");
        assert!(v > 0.3 && v < 0.7, "ViT ratio {v}");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_heads_panics() {
        let _ = TransformerConfig::new(128, 100, 400, 3, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = TransformerConfig::new(0, 100, 400, 4, 2);
    }

    #[test]
    fn approx_flops_magnitude_gpt() {
        // ~6·P·l per fwd+bwd; forward alone ~2·P·l = 2·1e12·2048 ≈ 4.1e15.
        let f = gpt().approx_forward_flops_per_sample();
        assert!(f > 3e15 && f < 6e15, "got {f:e}");
    }

    #[test]
    fn linear_attention_reduces_flops_for_long_seq() {
        let mut v = vit();
        let quad = v.approx_forward_flops_per_sample();
        v.linear_attention = true;
        let lin = v.approx_forward_flops_per_sample();
        assert!(lin < quad);
    }
}
