//! Training-run workloads: how many optimizer iterations a full training
//! run takes, so iteration times can be converted to days (Fig. 5).

use serde::{Deserialize, Serialize};

/// ERA5 provides hourly global snapshots: 365.25 · 24 samples per year.
pub const ERA5_SAMPLES_PER_YEAR: f64 = 365.25 * 24.0;

/// A full training run expressed as a number of optimizer iterations at a
/// fixed global batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingWorkload {
    /// Global batch size in samples (sequences).
    pub global_batch: u64,
    /// Total optimizer iterations for the full run.
    pub iterations: f64,
}

impl TrainingWorkload {
    /// LLM pre-training on a fixed token budget: `iterations = tokens /
    /// (global_batch · seq_len)`. The paper assumes GPT3-1T pre-trains on
    /// 1T tokens at batch 4096.
    pub fn from_token_budget(tokens: f64, global_batch: u64, seq_len: u64) -> Self {
        assert!(tokens > 0.0 && global_batch > 0 && seq_len > 0);
        Self {
            global_batch,
            iterations: tokens / (global_batch as f64 * seq_len as f64),
        }
    }

    /// Epoch-based training on a fixed dataset: `iterations = epochs ·
    /// samples / global_batch`. The paper trains the ViT for 80 epochs on
    /// 40 years of hourly ERA5.
    pub fn from_epochs(samples: f64, epochs: f64, global_batch: u64) -> Self {
        assert!(samples > 0.0 && epochs > 0.0 && global_batch > 0);
        Self {
            global_batch,
            iterations: epochs * samples / global_batch as f64,
        }
    }

    /// The paper's GPT3-1T pre-training run: 1T tokens, batch 4096, l=2048.
    pub fn gpt3_1t_pretraining() -> Self {
        Self::from_token_budget(1e12, 4096, 2048)
    }

    /// The paper's ViT training run: 80 epochs × 40 years of hourly ERA5,
    /// batch 4096.
    pub fn vit_era5_training() -> Self {
        Self::from_epochs(40.0 * ERA5_SAMPLES_PER_YEAR, 80.0, 4096)
    }

    /// Wall-clock days for the run given a per-iteration time in seconds.
    pub fn days(&self, iteration_seconds: f64) -> f64 {
        self.iterations * iteration_seconds / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_iteration_count() {
        let w = TrainingWorkload::gpt3_1t_pretraining();
        // 1e12 / (4096·2048) ≈ 119,209 iterations.
        assert!((w.iterations - 119_209.28).abs() < 1.0);
    }

    #[test]
    fn vit_iteration_count() {
        let w = TrainingWorkload::vit_era5_training();
        // 80 · 40·8766 / 4096 ≈ 6,848 iterations.
        assert!((w.iterations - 6_848.4).abs() < 1.0);
    }

    #[test]
    fn days_conversion() {
        let w = TrainingWorkload {
            global_batch: 1,
            iterations: 86_400.0,
        };
        assert!((w.days(1.0) - 1.0).abs() < 1e-12);
        assert!((w.days(2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn megatron_sanity_check() {
        // Paper §I: Megatron GPT-1T trained on 450B tokens with 3072 A100s
        // took 84 days → ~6.3s/iter at batch 4096... we just check the
        // iteration count arithmetic is in a plausible range.
        let w = TrainingWorkload::from_token_budget(450e9, 4096, 2048);
        assert!(w.iterations > 5e4 && w.iterations < 6e4);
    }

    #[test]
    #[should_panic]
    fn zero_batch_panics() {
        let _ = TrainingWorkload::from_token_budget(1e12, 0, 2048);
    }
}
