//! Model presets studied in the paper.

use crate::TransformerConfig;

/// A named model preset.
#[derive(Debug, Clone)]
pub struct Preset {
    pub name: &'static str,
    pub config: TransformerConfig,
}

/// GPT3-1T: the trillion-parameter LLM used throughout the paper's main
/// analysis. `(l, e, h, d) = (2048, 25600, 160, 128)`, `f = 4e`.
pub fn gpt3_1t() -> Preset {
    Preset {
        name: "GPT3-1T",
        config: TransformerConfig::new(2048, 25600, 4 * 25600, 160, 128),
    }
}

/// Long-sequence Vision Transformer representing scientific foundation
/// models: `(l, e, h, d) = (64800, 12288, 64, 48)`. The sequence length is
/// an ERA5 720×1440 grid at patch size 4 (= 180·360 = 64800 patches).
pub fn vit_64k() -> Preset {
    Preset {
        name: "ViT-64K",
        config: TransformerConfig::new(64800, 12288, 4 * 12288, 64, 48),
    }
}

/// GPT3-175B used in the paper's §IV empirical validation on 512 GPUs.
/// Standard GPT-3 architecture: `(l, e, h, d) = (2048, 12288, 96, 96)`.
pub fn gpt3_175b() -> Preset {
    Preset {
        name: "GPT3-175B",
        config: TransformerConfig::new(2048, 12288, 4 * 12288, 96, 96),
    }
}

/// The 32K-sequence ViT used in the paper's §IV empirical validation:
/// same block architecture as [`vit_64k`] at half the spatial resolution
/// (patch size 4 on a 720×720 crop → 180·180 = 32400 patches).
pub fn vit_32k() -> Preset {
    Preset {
        name: "ViT-32K",
        config: TransformerConfig::new(32400, 12288, 4 * 12288, 64, 48),
    }
}

/// Linear-attention variant of the 64K ViT (paper Outlook: "linear (or
/// windowed) attention versions of the ViT"). Same dimensions, but the
/// Logit/Attend stage costs `O(l·e_h²)` per head instead of `O(l²·e_h)`.
pub fn vit_64k_linear_attention() -> Preset {
    let mut config = TransformerConfig::new(64800, 12288, 4 * 12288, 64, 48);
    config.linear_attention = true;
    Preset {
        name: "ViT-64K-LinAttn",
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_175b_parameter_count() {
        let p = gpt3_175b().config.total_params() as f64;
        // Block-only count for the standard 175B architecture ≈ 174e9.
        assert!(p > 1.6e11 && p < 1.85e11, "got {p:e}");
    }

    #[test]
    fn vit_sequence_lengths_match_era5_patching() {
        assert_eq!(vit_64k().config.seq_len, (720 / 4) * (1440 / 4));
        assert_eq!(vit_32k().config.seq_len, 180 * 180);
    }

    #[test]
    fn presets_have_distinct_names() {
        let names = [
            gpt3_1t().name,
            vit_64k().name,
            gpt3_175b().name,
            vit_32k().name,
            vit_64k_linear_attention().name,
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn linear_attention_preset_flags_config() {
        assert!(vit_64k_linear_attention().config.linear_attention);
        assert!(!vit_64k().config.linear_attention);
    }
}
