//! Model presets studied in the paper.

use crate::TransformerConfig;

/// A named model preset.
#[derive(Debug, Clone)]
pub struct Preset {
    /// Paper's name for the model (e.g. `"GPT3-1T"`).
    pub name: &'static str,
    /// The architecture hyperparameters.
    pub config: TransformerConfig,
}

/// GPT3-1T: the trillion-parameter LLM used throughout the paper's main
/// analysis. `(l, e, h, d) = (2048, 25600, 160, 128)`, `f = 4e`.
pub fn gpt3_1t() -> Preset {
    Preset {
        name: "GPT3-1T",
        config: TransformerConfig::new(2048, 25600, 4 * 25600, 160, 128),
    }
}

/// Long-sequence Vision Transformer representing scientific foundation
/// models: `(l, e, h, d) = (64800, 12288, 64, 48)`. The sequence length is
/// an ERA5 720×1440 grid at patch size 4 (= 180·360 = 64800 patches).
pub fn vit_64k() -> Preset {
    Preset {
        name: "ViT-64K",
        config: TransformerConfig::new(64800, 12288, 4 * 12288, 64, 48),
    }
}

/// GPT3-175B used in the paper's §IV empirical validation on 512 GPUs.
/// Standard GPT-3 architecture: `(l, e, h, d) = (2048, 12288, 96, 96)`.
pub fn gpt3_175b() -> Preset {
    Preset {
        name: "GPT3-175B",
        config: TransformerConfig::new(2048, 12288, 4 * 12288, 96, 96),
    }
}

/// The 32K-sequence ViT used in the paper's §IV empirical validation:
/// same block architecture as [`vit_64k`] at half the spatial resolution
/// (patch size 4 on a 720×720 crop → 180·180 = 32400 patches).
pub fn vit_32k() -> Preset {
    Preset {
        name: "ViT-32K",
        config: TransformerConfig::new(32400, 12288, 4 * 12288, 64, 48),
    }
}

/// Linear-attention variant of the 64K ViT (paper Outlook: "linear (or
/// windowed) attention versions of the ViT"). Same dimensions, but the
/// Logit/Attend stage costs `O(l·e_h²)` per head instead of `O(l²·e_h)`.
pub fn vit_64k_linear_attention() -> Preset {
    let mut config = TransformerConfig::new(64800, 12288, 4 * 12288, 64, 48);
    config.linear_attention = true;
    Preset {
        name: "ViT-64K-LinAttn",
        config,
    }
}

/// MoE-1T: a Switch-Transformer-style sparsely-activated trillion-
/// parameter model (workload-breadth extension; the paper studies dense
/// models only). `(l, e, f, h, d) = (2048, 8192, 32768, 64, 32)` with 64
/// experts per block, top-1 routing and a 1.25 capacity factor — the
/// Switch-C recipe scaled so the expert FFNs alone hold ~1.1T parameters
/// while each token activates only ~26B.
pub fn moe_1t() -> Preset {
    Preset {
        name: "MoE-1T",
        config: TransformerConfig::new(2048, 8192, 4 * 8192, 64, 32).with_moe(64, 1, 125),
    }
}

/// GLaM-style MoE variant of GPT3-175B: the same block geometry as
/// [`gpt3_175b`] with every MLP widened to 8 experts under top-2 routing
/// (capacity 1.25). Total parameters grow to ~1T while per-token compute
/// roughly doubles (two experts per token) — the sparsely-activated
/// counterpart used to study expert parallelism against the dense
/// baseline.
pub fn gpt3_175b_moe() -> Preset {
    Preset {
        name: "GPT3-175B-MoE8",
        config: TransformerConfig::new(2048, 12288, 4 * 12288, 96, 96).with_moe(8, 2, 125),
    }
}

/// Multimodal scientific ViT: ERA5 imagery fused with a text/metadata
/// stream in one joint sequence — 16384 image patches (a 128×128 patch
/// grid, e.g. patch size ~6 on the 720×1440 ERA5 grid) plus 2048 text
/// tokens = 18432 tokens. Same block architecture as [`vit_64k`]; the
/// power-of-two-friendly sequence length gives the partitioning search
/// many more valid `(n1, n2)` factorizations than the 64800-token ViT.
pub fn vit_multimodal() -> Preset {
    Preset {
        name: "ViT-MM-18K",
        config: TransformerConfig::new(16384 + 2048, 12288, 4 * 12288, 64, 48),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_175b_parameter_count() {
        let p = gpt3_175b().config.total_params() as f64;
        // Block-only count for the standard 175B architecture ≈ 174e9.
        assert!(p > 1.6e11 && p < 1.85e11, "got {p:e}");
    }

    #[test]
    fn vit_sequence_lengths_match_era5_patching() {
        assert_eq!(vit_64k().config.seq_len, (720 / 4) * (1440 / 4));
        assert_eq!(vit_32k().config.seq_len, 180 * 180);
    }

    #[test]
    fn presets_have_distinct_names() {
        let names = [
            gpt3_1t().name,
            vit_64k().name,
            gpt3_175b().name,
            vit_32k().name,
            vit_64k_linear_attention().name,
            moe_1t().name,
            gpt3_175b_moe().name,
            vit_multimodal().name,
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn linear_attention_preset_flags_config() {
        assert!(vit_64k_linear_attention().config.linear_attention);
        assert!(!vit_64k().config.linear_attention);
    }

    #[test]
    fn moe_1t_holds_a_trillion_params_sparsely() {
        let c = moe_1t().config;
        let p = c.total_params() as f64;
        assert!(p > 0.95e12 && p < 1.25e12, "got {p:e}");
        // Top-1 routing: activated parameters are ~E× smaller.
        let act = (c.depth * c.activated_params_per_block()) as f64;
        assert!(act < p / 30.0, "activated {act:e} vs total {p:e}");
    }

    #[test]
    fn gpt3_175b_moe_matches_dense_geometry() {
        let dense = gpt3_175b().config;
        let moe = gpt3_175b_moe().config;
        assert_eq!(moe.embed, dense.embed);
        assert_eq!(moe.depth, dense.depth);
        let m = moe.moe.unwrap();
        assert_eq!((m.experts, m.top_k), (8, 2));
        // 8 experts: ~1T total parameters.
        let p = moe.total_params() as f64;
        assert!(p > 0.8e12 && p < 1.3e12, "got {p:e}");
    }

    #[test]
    fn multimodal_vit_sequence_is_patches_plus_text() {
        let c = vit_multimodal().config;
        assert_eq!(c.seq_len, 128 * 128 + 2048);
        assert!(!c.is_moe());
        // Power-of-two-rich sequence: divisible by every TP degree up to 64.
        for nt in [2u64, 4, 8, 16, 32, 64] {
            assert_eq!(c.seq_len % nt, 0, "nt {nt}");
        }
    }
}
