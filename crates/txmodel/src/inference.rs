//! Inference-serving workload description: request-length mixes, traffic
//! rates and the scheduler batch ceiling.
//!
//! Training asks "how fast can we push a fixed global batch through the
//! model"; serving asks "how many concurrent requests of *varying* length
//! can we answer within a latency budget". [`InferenceConfig`] captures
//! the serving side of that question in the same strategy-agnostic spirit
//! as [`TransformerConfig`](crate::TransformerConfig): prompt and output
//! length distributions, an aggregate request arrival rate, and the
//! continuous-batching ceiling. How those requests are scheduled onto a
//! parallelized model (KV-cache capacity, prefill/decode pricing,
//! colocated vs disaggregated pools) lives in `perfmodel::serving` and
//! the `servesim` simulator.
//!
//! Length distributions use a deliberately small two-point model
//! ([`LengthMix`]): a *typical* length covering 90% of requests and a
//! *long* length covering the remaining 10%. Two points are enough to
//! expose the phenomena that drive serving design — tail prompts stall
//! colocated decode, tail outputs pin KV slots — while keeping the mean
//! and the p50/p99 quantiles closed-form, so the analytic model and the
//! discrete simulator sample *exactly* the same distribution.
//!
//! All fields are integers (rates in milli-requests/s, the
//! [`MoeConfig`](crate::MoeConfig) `capacity_pct` idiom) so the types
//! stay `Eq + Hash` and usable as cache keys.

use crate::TransformerConfig;
use serde::{Deserialize, Serialize};

/// A two-point request-length distribution: `typical` tokens for 90% of
/// requests, `long` tokens for the remaining 10%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LengthMix {
    /// Length (tokens) of the typical request — the p50 of the mix.
    pub typical: u64,
    /// Length (tokens) of the long-tail request — the p99 of the mix.
    pub long: u64,
}

/// Fraction of requests drawing the long length, in percent.
pub const LONG_PCT: u64 = 10;

impl LengthMix {
    /// A mix with a 90% typical / 10% long split.
    ///
    /// # Panics
    /// Panics if either length is zero or `long < typical`.
    pub fn new(typical: u64, long: u64) -> Self {
        assert!(typical > 0 && long > 0, "lengths must be positive");
        assert!(
            long >= typical,
            "long ({long}) must be >= typical ({typical})"
        );
        Self { typical, long }
    }

    /// A degenerate mix where every request has the same length (e.g.
    /// fixed-resolution vision inputs).
    pub fn uniform(len: u64) -> Self {
        Self::new(len, len)
    }

    /// Mean length: `0.9·typical + 0.1·long`.
    pub fn mean(&self) -> f64 {
        let long_frac = LONG_PCT as f64 / 100.0;
        (1.0 - long_frac) * self.typical as f64 + long_frac * self.long as f64
    }

    /// Median length (the typical request).
    pub fn p50(&self) -> u64 {
        self.typical
    }

    /// 99th-percentile length (the long request — any quantile above
    /// `100 − LONG_PCT` percent lands on it).
    pub fn p99(&self) -> u64 {
        self.long
    }

    /// Samples the mix from a uniform draw `u ∈ [0, 1)`: the closed-form
    /// inverse CDF, shared verbatim by the analytic model and the
    /// `servesim` trace generator so both see the same distribution.
    pub fn sample(&self, u: f64) -> u64 {
        if u < 1.0 - LONG_PCT as f64 / 100.0 {
            self.typical
        } else {
            self.long
        }
    }
}

/// A serving workload: request length distributions, offered traffic and
/// the continuous-batching ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Prompt (prefill) length distribution, tokens per request.
    pub prompt: LengthMix,
    /// Generated output (decode) length distribution, tokens per request.
    pub output: LengthMix,
    /// Aggregate request arrival rate across the whole deployment, in
    /// milli-requests per second (integer for `Eq + Hash`; 8000 = 8
    /// requests/s). Use [`InferenceConfig::request_rate`] for the f64.
    pub request_rate_milli: u64,
    /// Scheduler ceiling on concurrently decoding sequences per model
    /// replica. The KV-cache capacity of the device may bind first; the
    /// effective ceiling is the smaller of the two.
    pub max_batch: u64,
}

impl InferenceConfig {
    /// A serving workload from length mixes and a rate in requests/s.
    ///
    /// # Panics
    /// Panics if the rate is not positive/finite or `max_batch` is zero.
    pub fn new(prompt: LengthMix, output: LengthMix, request_rate: f64, max_batch: u64) -> Self {
        assert!(
            request_rate.is_finite() && request_rate > 0.0,
            "request rate must be positive and finite"
        );
        assert!(max_batch > 0, "max_batch must be positive");
        Self {
            prompt,
            output,
            request_rate_milli: (request_rate * 1000.0).round() as u64,
            max_batch,
        }
    }

    /// Offered request rate in requests per second.
    pub fn request_rate(&self) -> f64 {
        self.request_rate_milli as f64 / 1000.0
    }

    /// Returns a copy with the given request rate (requests/s).
    pub fn with_request_rate(mut self, request_rate: f64) -> Self {
        assert!(
            request_rate.is_finite() && request_rate > 0.0,
            "request rate must be positive and finite"
        );
        self.request_rate_milli = (request_rate * 1000.0).round() as u64;
        self
    }

    /// Returns a copy with the given batch ceiling.
    pub fn with_max_batch(mut self, max_batch: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Mean full-context length at completion (prompt + output), tokens.
    /// This is the KV footprint a *mean* resident sequence converges to.
    pub fn mean_context(&self) -> f64 {
        self.prompt.mean() + self.output.mean()
    }

    /// 99th-percentile full-context length (long prompt + long output) —
    /// the KV footprint a capacity plan must be able to hold at least
    /// once.
    pub fn p99_context(&self) -> u64 {
        self.prompt.p99() + self.output.p99()
    }

    /// Offered *output-token* load: mean generated tokens per second
    /// across the deployment (`rate · mean output length`).
    pub fn offered_token_rate(&self) -> f64 {
        self.request_rate() * self.output.mean()
    }
}

/// A named serving workload: a model preset plus its traffic.
#[derive(Debug, Clone)]
pub struct ServingPreset {
    /// Workload name (figure legends, bench ids).
    pub name: &'static str,
    /// The model being served.
    pub model: TransformerConfig,
    /// The offered traffic.
    pub traffic: InferenceConfig,
}

/// GPT3-175B serving chat-style traffic: 512-token typical prompts with
/// a 2048-token tail, 256-token typical completions with a 1024-token
/// tail, 8 requests/s offered. Lengths are powers of two so every TP
/// degree the search considers divides them.
pub fn gpt3_175b_chat() -> ServingPreset {
    ServingPreset {
        name: "GPT3-175B-chat",
        model: crate::gpt3_175b().config,
        traffic: InferenceConfig::new(
            LengthMix::new(512, 2048),
            LengthMix::new(256, 1024),
            8.0,
            128,
        ),
    }
}

/// MoE-1T under the same chat traffic shape: sparse activation makes
/// decode cheap per token but the resident expert set makes weights
/// huge, so the serving trade-offs land differently than dense.
pub fn moe_1t_chat() -> ServingPreset {
    ServingPreset {
        name: "MoE-1T-chat",
        model: crate::moe_1t().config,
        traffic: InferenceConfig::new(
            LengthMix::new(512, 2048),
            LengthMix::new(256, 1024),
            4.0,
            64,
        ),
    }
}

/// Multimodal scientific ViT serving: every request carries the full
/// fixed 18432-token image+text sequence (a uniform prompt mix) and
/// generates a short structured answer. Prefill-dominated — the workload
/// where disaggregating prefill from decode matters most.
pub fn vit_multimodal_serving() -> ServingPreset {
    ServingPreset {
        name: "ViT-MM-18K-serve",
        model: crate::vit_multimodal().config,
        traffic: InferenceConfig::new(
            LengthMix::uniform(16384 + 2048),
            LengthMix::new(32, 128),
            2.0,
            32,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_quantiles_and_mean() {
        let m = LengthMix::new(512, 2048);
        assert_eq!(m.p50(), 512);
        assert_eq!(m.p99(), 2048);
        assert!((m.mean() - (0.9 * 512.0 + 0.1 * 2048.0)).abs() < 1e-9);
        // The inverse CDF matches the 90/10 split exactly.
        assert_eq!(m.sample(0.0), 512);
        assert_eq!(m.sample(0.899_999), 512);
        assert_eq!(m.sample(0.9), 2048);
        assert_eq!(m.sample(0.999), 2048);
    }

    #[test]
    fn uniform_mix_is_degenerate() {
        let m = LengthMix::uniform(100);
        assert_eq!(m.p50(), m.p99());
        assert!((m.mean() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn rates_round_trip_through_milli() {
        let t = gpt3_175b_chat().traffic;
        assert!((t.request_rate() - 8.0).abs() < 1e-9);
        let t2 = t.with_request_rate(0.25);
        assert_eq!(t2.request_rate_milli, 250);
        assert!((t2.request_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn context_accounting_composes_prompt_and_output() {
        let t = gpt3_175b_chat().traffic;
        assert_eq!(t.p99_context(), 2048 + 1024);
        assert!((t.mean_context() - (t.prompt.mean() + t.output.mean())).abs() < 1e-9);
        assert!((t.offered_token_rate() - 8.0 * t.output.mean()).abs() < 1e-9);
    }

    #[test]
    fn serving_presets_have_distinct_names_and_valid_models() {
        let presets = [gpt3_175b_chat(), moe_1t_chat(), vit_multimodal_serving()];
        let names: std::collections::HashSet<_> = presets.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), presets.len());
        // The ViT preset's prompt is the model's full sequence.
        let vit = vit_multimodal_serving();
        assert_eq!(vit.traffic.prompt.typical, vit.model.seq_len);
    }

    #[test]
    fn traffic_is_hashable_cache_key() {
        // The integer-field discipline exists for this property.
        let mut set = std::collections::HashSet::new();
        set.insert(gpt3_175b_chat().traffic);
        set.insert(gpt3_175b_chat().traffic);
        set.insert(moe_1t_chat().traffic);
        assert_eq!(set.len(), 2);
    }
}
