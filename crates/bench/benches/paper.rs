//! Criterion benchmarks for the machinery behind every paper artifact,
//! prefaced by a full regeneration of the artifact data so that
//! `cargo bench` output contains the reproduced tables and figures.
//!
//! Groups map to DESIGN.md's experiment index:
//! * `profile`        — S1 layer-profile construction (Tables I/II/A2 path)
//! * `placement`      — best-placement evaluation (Figs. 1–3 path)
//! * `search`         — full S3 optimization (Figs. 4, 5, A3–A6 path)
//! * `moe-search`     — the joint `(tp, pp, dp, ep)` MoE search, tracked
//!   alongside dense so expert parallelism's search-cost stays visible
//! * `planner-topk`   — the `Planner` execution path (top-k ranking +
//!   Pareto frontier + plan assembly) over the same spaces, so the
//!   redesigned API's overhead over the raw sweep stays visible
//! * `planner-topk-pruned` — the ranked-path exact prune (k-th-incumbent
//!   and Pareto lower-bound domination) against a pruning-off leg on the
//!   largest dense and MoE spaces, so the prune's speedup stays visible
//! * `search-scaling` — the same S3 search pinned to 1/2/4/8 pool threads
//! * `netsim`         — collective DES (Fig. A1 path)
//! * `netsim-algorithms` — ring vs tree vs hierarchical vs auto AllReduce
//!   schedules in the DES (the algorithm-selection validation path)
//! * `trainsim`       — 1F1B schedule simulation (§IV validation path)
//! * `serving-search` — the serving-objective planner sweep (every
//!   candidate pays the analytic prefill/decode assessment across the
//!   placement grid) and one discrete-event serving replay, so the
//!   inference workload class's search cost stays visible
//!
//! Every measurement is additionally written to `out/bench.json`
//! (schema `fmperf-bench-v1`) so the per-PR perf trajectory is
//! machine-readable; pass `--quick` for a short CI smoke run that skips
//! the artifact-regeneration preamble.

use criterion::{criterion_group, Criterion};
use perfmodel::partition::build_profile;
use perfmodel::{
    best_placement_eval, optimize, ParallelConfig, Placement, SearchOptions, TpStrategy,
};
use std::time::Duration;
use systems::{perlmutter, system, GpuGeneration, NvsSize};
use txmodel::{gpt3_175b, gpt3_175b_moe, gpt3_1t, moe_1t, vit_64k};

fn bench_search_scaling(c: &mut Criterion) {
    let gpt = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut g = c.benchmark_group("search-scaling");
    // More samples than the other search groups: oversubscribed pools
    // (8 threads on small machines) add scheduling jitter, and this
    // group's 8-vs-1-thread ratio is gated in CI — the larger sample
    // keeps the mean at its steady state instead of a noisy tail.
    g.sample_size(30);
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        g.bench_function(&format!("gpt_summa_n16384_t{threads}"), |b| {
            b.iter(|| {
                pool.install(|| {
                    optimize(
                        &gpt,
                        &sys,
                        &SearchOptions::default()
                            .gpus(16384)
                            .global_batch(4096)
                            .strategy(TpStrategy::Summa),
                    )
                })
            })
        });
    }
    g.finish();
}

/// Writes every recorded measurement to `out/bench.json`, grouped by the
/// `group/function` id prefix — the machine-readable perf trajectory CI
/// uploads per PR.
fn emit_bench_json(out: &std::path::Path) {
    use serde_json::{json, Value};
    let mut groups: Vec<(String, Value)> = Vec::new();
    for r in criterion::take_results() {
        let (group, name) = r.id.split_once('/').unwrap_or(("ungrouped", r.id.as_str()));
        let cell = Value::Object(vec![
            ("mean_ns".into(), json!(r.mean_ns)),
            ("iterations".into(), json!(r.iterations)),
        ]);
        match groups.iter_mut().find(|(g, _)| g == group) {
            Some((_, Value::Object(entries))) => entries.push((name.into(), cell)),
            _ => groups.push((group.into(), Value::Object(vec![(name.into(), cell)]))),
        }
    }
    let doc = Value::Object(vec![
        ("schema".into(), json!("fmperf-bench-v1")),
        ("groups".into(), Value::Object(groups)),
    ]);
    let path = out.join("bench.json");
    match std::fs::create_dir_all(out).and_then(|()| {
        serde_json::to_string_pretty(&doc)
            .map_err(std::io::Error::from)
            .and_then(|s| std::fs::write(&path, s))
    }) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn bench_profile(c: &mut Criterion) {
    let gpu = GpuGeneration::B200.gpu();
    let gpt = gpt3_1t().config;
    let vit = vit_64k().config;
    let mut g = c.benchmark_group("profile");
    g.bench_function("gpt_1d_nt8", |b| {
        b.iter(|| build_profile(&gpt, TpStrategy::OneD, 8, 1, 1, 1, 1, &gpu))
    });
    g.bench_function("vit_2d_4x4", |b| {
        b.iter(|| build_profile(&vit, TpStrategy::TwoD, 4, 4, 1, 1, 1, &gpu))
    });
    g.bench_function("gpt_summa_8x4_nb4", |b| {
        b.iter(|| build_profile(&gpt, TpStrategy::Summa, 8, 4, 1, 4, 1, &gpu))
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let gpt = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 1);
    let mut g = c.benchmark_group("placement");
    g.bench_function("fig1_config_d", |b| {
        b.iter(|| best_placement_eval(&gpt, &cfg, 4096, &sys))
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let gpt = gpt3_1t().config;
    let vit = vit_64k().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut g = c.benchmark_group("search");
    g.sample_size(10);
    g.bench_function("gpt_1d_n1024", |b| {
        b.iter(|| {
            optimize(
                &gpt,
                &sys,
                &SearchOptions::default()
                    .gpus(1024)
                    .global_batch(4096)
                    .strategy(TpStrategy::OneD),
            )
        })
    });
    g.bench_function("gpt_1d_n16384", |b| {
        b.iter(|| {
            optimize(
                &gpt,
                &sys,
                &SearchOptions::default()
                    .gpus(16384)
                    .global_batch(4096)
                    .strategy(TpStrategy::OneD),
            )
        })
    });
    g.bench_function("gpt_summa_n16384", |b| {
        b.iter(|| {
            optimize(
                &gpt,
                &sys,
                &SearchOptions::default()
                    .gpus(16384)
                    .global_batch(4096)
                    .strategy(TpStrategy::Summa),
            )
        })
    });
    g.bench_function("vit_2d_n16384", |b| {
        b.iter(|| {
            optimize(
                &vit,
                &sys,
                &SearchOptions::default()
                    .gpus(16384)
                    .global_batch(4096)
                    .strategy(TpStrategy::TwoD),
            )
        })
    });
    g.finish();
}

/// MoE search cost alongside dense: the expert-parallel dimension
/// multiplies the candidate space, so this group tracks whether the
/// ProfileCache/memo_f64 reuse keeps the joint `(tp, pp, dp, ep)` sweep
/// in the same cost class as the dense searches above.
fn bench_moe_search(c: &mut Criterion) {
    let moe1t = moe_1t().config;
    let moe175b = gpt3_175b_moe().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut g = c.benchmark_group("moe-search");
    g.sample_size(10);
    g.bench_function("moe1t_1d_n1024", |b| {
        b.iter(|| {
            optimize(
                &moe1t,
                &sys,
                &SearchOptions::default()
                    .gpus(1024)
                    .global_batch(4096)
                    .strategy(TpStrategy::OneD),
            )
        })
    });
    g.bench_function("moe1t_1d_n16384", |b| {
        b.iter(|| {
            optimize(
                &moe1t,
                &sys,
                &SearchOptions::default()
                    .gpus(16384)
                    .global_batch(4096)
                    .strategy(TpStrategy::OneD),
            )
        })
    });
    g.bench_function("gpt175b_moe8_n4096", |b| {
        b.iter(|| {
            optimize(
                &moe175b,
                &sys,
                &SearchOptions::default()
                    .gpus(4096)
                    .global_batch(1024)
                    .strategy(TpStrategy::OneD),
            )
        })
    });
    g.finish();
}

/// The redesigned planning surface: full `Planner::execute` (evaluated
/// sweep + top-k ranking + Pareto frontier + plan assembly) on the dense
/// and multi-scale spaces. Tracked against `search` so the planner's
/// post-sweep overhead stays visible in the trajectory.
fn bench_planner_topk(c: &mut Criterion) {
    use perfmodel::{Objective, Planner};
    let gpt = gpt3_1t().config;
    let gpt175 = gpt3_175b().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut g = c.benchmark_group("planner-topk");
    g.sample_size(10);
    g.bench_function("gpt_1d_n1024_top8_pareto2", |b| {
        b.iter(|| {
            Planner::new(&gpt, &sys)
                .gpus(1024)
                .global_batch(4096)
                .strategy(TpStrategy::OneD)
                .top_k(8)
                .pareto([Objective::IterationTime, Objective::HbmHeadroom])
                .execute()
        })
    });
    g.bench_function("gpt175b_multiscale_lex_cost", |b| {
        b.iter(|| {
            Planner::new(&gpt175, &sys)
                .gpu_counts([512, 1024, 2048, 4096])
                .global_batch(1024)
                .strategy(TpStrategy::OneD)
                .objective(Objective::IterationTime.then(1.0, Objective::GpuSeconds))
                .top_k(8)
                .execute()
        })
    });
    g.finish();
}

/// The ranked-path exact prune: top-8 + Pareto planning on the paper's
/// largest dense space (GPT-3 1T, SUMMA, 16 384 GPUs) and on MoE-1T,
/// with a pruning-off leg beside each pruned leg so the speedup from the
/// k-th-incumbent and Pareto-bound prunes (and its exactness cost, were
/// it to regress to a slowdown) stays visible in the trajectory.
fn bench_planner_topk_pruned(c: &mut Criterion) {
    use perfmodel::{Objective, Planner};
    let gpt = gpt3_1t().config;
    let moe = moe_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut g = c.benchmark_group("planner-topk-pruned");
    g.sample_size(10);
    let gpt_planner = |pruned: bool| {
        Planner::new(&gpt, &sys)
            .gpus(16384)
            .global_batch(4096)
            .strategy(TpStrategy::Summa)
            .top_k(8)
            .pareto([Objective::IterationTime, Objective::HbmHeadroom])
            .branch_and_bound(pruned)
            .prune_dominated(pruned)
    };
    g.bench_function("gpt_summa_n16384_top8_pruned", |b| {
        let p = gpt_planner(true);
        b.iter(|| p.execute())
    });
    g.bench_function("gpt_summa_n16384_top8_unpruned", |b| {
        let p = gpt_planner(false);
        b.iter(|| p.execute())
    });
    let moe_planner = |pruned: bool| {
        Planner::new(&moe, &sys)
            .gpus(1024)
            .global_batch(4096)
            .strategy(TpStrategy::OneD)
            .top_k(8)
            .pareto([Objective::IterationTime, Objective::HbmHeadroom])
            .branch_and_bound(pruned)
            .prune_dominated(pruned)
    };
    g.bench_function("moe1t_n1024_top8_pruned", |b| {
        let p = moe_planner(true);
        b.iter(|| p.execute())
    });
    g.bench_function("moe1t_n1024_top8_unpruned", |b| {
        let p = moe_planner(false);
        b.iter(|| p.execute())
    });
    g.finish();
}

fn bench_netsim(c: &mut Criterion) {
    use collectives::{Collective, CommGroup};
    use netsim::{simulate_collective, SimOptions};
    let sys = perlmutter(4);
    let group = CommGroup::new(32, 4);
    let opts = SimOptions::default();
    let mut g = c.benchmark_group("netsim");
    g.bench_function("allgather_1gb_32gpu", |b| {
        b.iter(|| simulate_collective(Collective::AllGather, 1e9, group, &sys, &opts))
    });
    g.bench_function("allreduce_1gb_32gpu", |b| {
        b.iter(|| simulate_collective(Collective::AllReduce, 1e9, group, &sys, &opts))
    });
    g.finish();
}

fn bench_netsim_algorithms(c: &mut Criterion) {
    use collectives::{Collective, CommGroup};
    use netsim::{simulate_collective, Algorithm, SimOptions};
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let group = CommGroup::new(64, 8);
    let mut g = c.benchmark_group("netsim-algorithms");
    for algorithm in Algorithm::ALL {
        let opts = SimOptions {
            algorithm,
            ..SimOptions::default()
        };
        g.bench_function(&format!("allreduce_1gb_64gpu_{}", algorithm.name()), |b| {
            b.iter(|| simulate_collective(Collective::AllReduce, 1e9, group, &sys, &opts))
        });
    }
    g.finish();
}

fn bench_trainsim(c: &mut Criterion) {
    use trainsim::{simulate_iteration, SimParams};
    let model = gpt3_175b().config;
    let sys = perlmutter(4);
    let cfg = ParallelConfig::new(TpStrategy::OneD, 4, 1, 16, 8, 1);
    let pl = Placement {
        v1: 4,
        v2: 1,
        vp: 1,
        vd: 1,
    };
    let mut g = c.benchmark_group("trainsim");
    g.bench_function("gpt175b_512gpu_iteration", |b| {
        b.iter(|| simulate_iteration(&model, &cfg, &pl, 1024, &sys, &SimParams::default()).unwrap())
    });
    g.finish();
}

/// The reliability layer: a goodput-objective planner sweep (every
/// candidate pays the `assess()` overhead — interval solver included)
/// and one fault-injected training replay (trace sampling + three
/// iteration-variant sims + the multi-day replay loop).
fn bench_reliability(c: &mut Criterion) {
    use perfmodel::{Objective, Planner};
    use systems::ReliabilitySpec;
    use trainsim::{simulate_training, FaultPlan, TrainingParams};
    let model = gpt3_175b().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut g = c.benchmark_group("reliability-search");
    g.sample_size(10);
    g.bench_function("gpt175b_n4096_goodput", |b| {
        b.iter(|| {
            Planner::new(&model, &sys)
                .gpus(4096)
                .global_batch(1024)
                .strategy(TpStrategy::OneD)
                .objective(Objective::ExpectedGoodput)
                .execute()
        })
    });
    let a100 = perlmutter(4);
    let cfg = ParallelConfig::new(TpStrategy::OneD, 4, 1, 16, 8, 1);
    let pl = Placement {
        v1: 4,
        v2: 1,
        vp: 1,
        vd: 1,
    };
    let spec = ReliabilitySpec::datacenter().with_gpu_mtbf_hours(2_000.0);
    let a100 = a100.with_reliability(spec);
    let plan = FaultPlan::sample(&spec, 512, a100.nics_for(512), 127, 10.0 * 86_400.0, 11);
    let params = TrainingParams::new(300.0, 1.0, spec.restart_overhead_s);
    g.bench_function("gpt175b_512gpu_replay_10d", |b| {
        b.iter(|| simulate_training(&model, &cfg, &pl, 1024, &a100, &plan, &params).unwrap())
    });
    g.finish();
}

/// The serving layer: an SLO-objective planner sweep (every candidate
/// pays the full placement-grid assessment — occupancy fixed point and
/// queueing included) and one seeded discrete-event serving replay
/// (Poisson trace + admission + prefill pool + decode loop).
fn bench_serving(c: &mut Criterion) {
    use perfmodel::serving::{assess_slo, SloSpec};
    use perfmodel::{Objective, Planner};
    use servesim::{simulate_serving, SimParams, SimSpec};
    use txmodel::gpt3_175b_chat;
    let preset = gpt3_175b_chat();
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let slo = SloSpec {
        ttft_p50: 0.12,
        ttft_p99: 0.16,
        tpot_p50: 0.03,
        tpot_p99: 0.05,
    };
    let mut g = c.benchmark_group("serving-search");
    g.sample_size(10);
    g.bench_function("gpt175b_chat_n64_slo", |b| {
        b.iter(|| {
            Planner::new(&preset.model, &sys)
                .gpus(64)
                .global_batch(1024)
                .strategy(TpStrategy::OneD)
                .serving(preset.traffic)
                .objective(Objective::ServingSlo { slo })
                .execute()
        })
    });
    let planner = Planner::new(&preset.model, &sys)
        .gpus(64)
        .global_batch(1024)
        .strategy(TpStrategy::OneD)
        .serving(preset.traffic);
    let ctx = planner.objective_ctx();
    let sctx = ctx.serving.as_ref().expect("serving configured");
    let best = planner
        .objective(Objective::ServingSlo { slo })
        .top_k(1)
        .execute();
    let best = best.best().expect("the 64-GPU space is non-empty");
    let r = assess_slo(&best.eval, sctx, &slo);
    let spec = SimSpec::from_plan(&best.eval, sctx, r.mode).expect("winner is simulatable");
    let params = SimParams {
        seed: 42,
        requests: 3000,
    };
    g.bench_function("gpt175b_chat_replay_3000req", |b| {
        b.iter(|| simulate_serving(&spec, &params))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_profile,
    bench_placement,
    bench_search,
    bench_moe_search,
    bench_planner_topk,
    bench_planner_topk_pruned,
    bench_search_scaling,
    bench_netsim,
    bench_netsim_algorithms,
    bench_trainsim,
    bench_reliability,
    bench_serving
);

fn main() {
    // Regenerate every paper artifact first so `cargo bench` output is a
    // complete reproduction record (written to the workspace-level out/
    // as JSON + CSV; cargo runs benches with the package as cwd).
    // `--quick` (the CI bench-smoke mode) skips the regeneration and only
    // takes short measurements for the trajectory file.
    let quick = std::env::args().any(|a| a == "--quick");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../out");
    if !quick {
        for id in paperbench::ALL_IDS {
            let t0 = std::time::Instant::now();
            for art in paperbench::generate(id).expect("ALL_IDS ids are known") {
                println!("{}", art.render());
                if let Err(e) = art.write(&out) {
                    eprintln!("warning: could not write {}: {e}", art.id);
                }
            }
            println!("[{id}] regenerated in {:.2?}\n", t0.elapsed());
        }
    }

    let mut c = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
        .configure_from_args();
    bench_profile(&mut c);
    bench_placement(&mut c);
    bench_search(&mut c);
    bench_moe_search(&mut c);
    bench_planner_topk(&mut c);
    bench_planner_topk_pruned(&mut c);
    bench_search_scaling(&mut c);
    bench_netsim(&mut c);
    bench_netsim_algorithms(&mut c);
    bench_trainsim(&mut c);
    bench_reliability(&mut c);
    bench_serving(&mut c);
    c.final_summary();
    emit_bench_json(&out);
}
