//! Paper-artifact regeneration harness.
//!
//! Every table and figure in the paper's evaluation has a generator here
//! (see DESIGN.md §3 for the experiment index). Generators return
//! [`report::Artifact`] values that the `figures` binary renders to the
//! terminal and writes to `out/<id>.{json,csv}`; the Criterion benches in
//! `benches/paper.rs` measure the underlying model machinery — including
//! the dense and MoE (`moe-search`) design-space searches, the multi-
//! algorithm collective DES and the 1F1B schedule simulator — print the
//! regenerated rows into `cargo bench` output, and emit the
//! machine-readable perf trajectory to `out/bench.json`.
//!
//! # The `fmperf-bench-v1` trajectory schema
//!
//! `out/bench.json` is the per-PR perf record CI uploads as an artifact
//! and `PERFORMANCE.md`'s trajectory table is built from. One document:
//!
//! ```json
//! {
//!   "schema": "fmperf-bench-v1",
//!   "groups": {
//!     "search":         { "gpt_summa_n16384":    { "mean_ns": 5.52e6, "iterations": 10 }, ... },
//!     "search-scaling": { "gpt_summa_n16384_t1": { "mean_ns": 5.49e6, "iterations": 10 }, ... },
//!     ...
//!   }
//! }
//! ```
//!
//! * `schema` — the literal string `"fmperf-bench-v1"`. Consumers must
//!   reject other values; additive changes (new groups, new functions,
//!   new per-cell fields) do **not** bump the version, renames and
//!   semantic changes do.
//! * `groups` — one object per Criterion benchmark group, keyed by group
//!   name (`profile`, `placement`, `search`, `moe-search`,
//!   `planner-topk`, `search-scaling`, `netsim`, `netsim-algorithms`,
//!   `trainsim`, `reliability-search`), each mapping function name to a
//!   measurement cell.
//!   Insertion order follows bench registration order.
//! * cell `mean_ns` — mean wall-clock nanoseconds per iteration over the
//!   measurement window (warm: memo tables and caches carry across
//!   iterations; see PERFORMANCE.md "What the numbers mean").
//! * cell `iterations` — iterations in the measurement window; `--quick`
//!   (the CI bench-smoke mode) uses a shorter window, so compare
//!   `mean_ns` across runs only at equal modes.
//!
//! The `search-scaling` group names encode the pinned pool size
//! (`gpt_summa_n16384_t{1,2,4,8}`); the 8-vs-1-thread ratio on that
//! group is the scaling gate CI enforces on multi-core runners.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod common;
pub mod figs;

use report::Artifact;

/// All artifact identifiers, in paper order.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "tablea2",
    "tablea3",
    "fig1",
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "figa1",
    "figa2",
    "figa3",
    "figa4",
    "figa5",
    "figa6",
    "validation",
    "ablations",
    "reliability",
];

/// An artifact identifier not present in [`ALL_IDS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownArtifact(pub String);

impl std::fmt::Display for UnknownArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown artifact id {:?}; known: {ALL_IDS:?}", self.0)
    }
}

impl std::error::Error for UnknownArtifact {}

/// Generates the artifact set for one identifier (a figure may produce
/// several artifacts, e.g. its (a) and (b) panels).
pub fn generate(id: &str) -> Result<Vec<Artifact>, UnknownArtifact> {
    Ok(match id {
        "table1" => vec![figs::tables::table1()],
        "table2" => vec![figs::tables::table2()],
        "tablea2" => vec![figs::tables::tablea2()],
        "tablea3" => vec![figs::tables::tablea3()],
        "fig1" => vec![figs::fig1::generate()],
        "fig2" => figs::fig2::generate(),
        "fig3" => figs::fig3::generate(),
        "fig4a" => vec![figs::fig4::generate_4a()],
        "fig4b" => vec![figs::fig4::generate_4b()],
        "fig5a" => vec![figs::fig5::generate_5a()],
        "fig5b" => vec![figs::fig5::generate_5b()],
        "figa1" => vec![figs::figa1::generate()],
        "figa2" => figs::figa2::generate(),
        "figa3" => figs::figa3::generate(),
        "figa4" => figs::figa4::generate(),
        "figa5" => figs::figa5::generate(),
        "figa6" => figs::figa6::generate(),
        "validation" => vec![figs::validation::generate()],
        "ablations" => figs::ablations::generate(),
        "reliability" => figs::reliability::generate(),
        other => return Err(UnknownArtifact(other.to_string())),
    })
}

/// CLI entry point shared by `crates/bench/src/bin/figures.rs` and the
/// facade's `src/bin/figures.rs`: `figures [all | <id>...] [--out DIR]`.
pub fn figures_main() {
    use crate::{generate, ALL_IDS};
    use std::path::PathBuf;

    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("out");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        if pos < args.len() {
            out_dir = PathBuf::from(args.remove(pos));
        } else {
            eprintln!("--out requires a directory argument");
            std::process::exit(2);
        }
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [all | <id>...] [--out DIR]");
        eprintln!("known ids: {}", ALL_IDS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        let t0 = std::time::Instant::now();
        let arts = match generate(id) {
            Ok(arts) => arts,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        for art in arts {
            println!("{}", art.render());
            if let Some(hm) = crate::common::grid_heatmap(&art) {
                println!("{hm}");
            }
            match art.write(&out_dir) {
                Ok((json, csv)) => {
                    eprintln!("wrote {} and {}", json.display(), csv.display())
                }
                Err(e) => {
                    eprintln!("failed to write {}: {e}", art.id);
                    std::process::exit(1);
                }
            }
        }
        eprintln!("[{id}] regenerated in {:.2?}\n", t0.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_generates_nonempty_artifacts() {
        // Smoke-generate the cheap artifacts; the expensive sweeps are
        // covered by the figures binary / benches.
        for id in ["table1", "table2", "tablea2", "tablea3", "fig1"] {
            let arts = generate(id).expect("known id");
            assert!(!arts.is_empty(), "{id} produced nothing");
            for a in arts {
                assert!(!a.rows.is_empty(), "{id}/{} has no rows", a.id);
            }
        }
    }

    #[test]
    fn unknown_id_is_a_typed_error() {
        let err = generate("nope").expect_err("unknown id");
        assert_eq!(err, UnknownArtifact("nope".to_string()));
        assert!(err.to_string().contains("known:"), "{err}");
    }
}
