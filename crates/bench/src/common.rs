//! Shared helpers for the figure generators.

use perfmodel::{Evaluation, ParallelConfig, Planner, TpStrategy};
use report::{num, stacked_bar};
use serde_json::{json, Value};
use systems::SystemSpec;
use txmodel::TransformerConfig;

/// The figure pipeline's search entry point since the `Planner` redesign:
/// best feasible evaluation of the standard single-scale space, or `None`
/// if nothing fits HBM. Selection is pinned bit-identical to the legacy
/// `optimize` free function (see `tests/wrapper_determinism.rs`), so the
/// `out/` artifacts regenerate byte-identically.
pub fn plan_best(
    model: &TransformerConfig,
    sys: &SystemSpec,
    gpus: u64,
    global_batch: u64,
    strategy: TpStrategy,
) -> Option<Evaluation> {
    planner(model, sys, gpus, global_batch, strategy)
        .execute()
        .best()
        .map(|p| p.eval.clone())
}

/// The standard single-scale, single-strategy planner the figures share;
/// figures with extra knobs (interleave, ZeRO-3) extend its space.
pub fn planner<'a>(
    model: &'a TransformerConfig,
    sys: &'a SystemSpec,
    gpus: u64,
    global_batch: u64,
    strategy: TpStrategy,
) -> Planner<'a> {
    Planner::new(model, sys)
        .gpus(gpus)
        .global_batch(global_batch)
        .strategy(strategy)
        .top_k(1)
}

/// Pinned-configuration evaluation under its best placement (the
/// Figs. 1–3 "assignment is optimal" path) — delegates to the
/// `best_placement_eval` wrapper, itself `Planner::evaluate_config`.
pub fn pinned_eval(
    model: &TransformerConfig,
    sys: &SystemSpec,
    cfg: &ParallelConfig,
    global_batch: u64,
) -> Evaluation {
    perfmodel::best_placement_eval(model, cfg, global_batch, sys)
}

/// Column set for configuration-sweep artifacts (the paper's paired
/// "Parallelization Configuration" + "Time" panels flattened into rows).
pub const EVAL_COLUMNS: [&str; 16] = [
    "label",
    "n1",
    "n2",
    "np",
    "nd",
    "bm",
    "microbatches",
    "mem_gb",
    "feasible",
    "t_iter_s",
    "pct_compute",
    "pct_tp_comm",
    "pct_pp_bubble",
    "pct_dp_comm",
    "pct_memory",
    "pct_pp_comm",
];

/// Converts an evaluation into an [`EVAL_COLUMNS`] row.
pub fn eval_row(label: &str, e: &Evaluation) -> Vec<Value> {
    let pct = e.breakdown.percentages();
    vec![
        json!(label),
        json!(e.config.n1),
        json!(e.config.n2),
        json!(e.config.np),
        json!(e.config.nd),
        json!(e.config.microbatch),
        json!(e.microbatches),
        num(e.memory.total_gb()),
        json!(e.feasible),
        num(e.iteration_time),
        num(pct[0].1),
        num(pct[1].1),
        num(pct[2].1),
        num(pct[3].1),
        num(pct[4].1),
        num(pct[5].1),
    ]
}

/// The paper's time-panel stacked bar for one evaluation:
/// `C`ompute, `T`P comm, `B`ubble, `D`P comm, `M`emory, `P`P comm.
pub fn breakdown_bar(e: &Evaluation, width: usize) -> String {
    let b = &e.breakdown;
    stacked_bar(
        &[
            ('C', b.compute),
            ('T', b.tp_comm),
            ('B', b.pp_bubble),
            ('D', b.dp_comm),
            ('M', b.memory),
            ('P', b.pp_comm),
        ],
        width,
    )
}

/// Power-of-two range `[lo, hi]` inclusive.
pub fn pow2_range(lo: u64, hi: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

/// Renders the A5/A6-style co-design artifacts (columns ending in a
/// numeric x, y, days triple) as an ASCII heatmap; `None` for other
/// artifact shapes.
pub fn grid_heatmap(art: &report::Artifact) -> Option<String> {
    let (xi, yi, vi, xl, yl) = match art.id.as_str() {
        "figa5a" | "figa5b" => (1usize, 0usize, 3usize, "hbm cap+bw", "tensor TFLOPs"),
        "figa6a" | "figa6b" => (0, 1, 2, "hbm capacity", "hbm bandwidth"),
        _ => return None,
    };
    let points: Vec<(f64, f64, Option<f64>)> = art
        .rows
        .iter()
        .map(|r| {
            (
                r[xi].as_f64().unwrap_or(f64::NAN),
                r[yi].as_f64().unwrap_or(f64::NAN),
                r[vi].as_f64(),
            )
        })
        .collect();
    Some(report::heatmap(&points, xl, yl))
}

/// Config labels A, B, C, … as the paper's x axes use.
pub fn config_label(i: usize) -> String {
    char::from(b'A' + (i % 26) as u8).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::{evaluate, ParallelConfig, Placement, TpStrategy};
    use systems::{system, GpuGeneration, NvsSize};
    use txmodel::gpt3_1t;

    #[test]
    fn eval_row_width_matches_columns() {
        let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 1);
        let e = evaluate(
            &gpt3_1t().config,
            &cfg,
            &Placement {
                v1: 8,
                v2: 1,
                vp: 1,
                vd: 1,
            },
            4096,
            &sys,
        );
        assert_eq!(eval_row("D", &e).len(), EVAL_COLUMNS.len());
        let bar = breakdown_bar(&e, 40);
        assert_eq!(bar.chars().count(), 40);
        assert!(bar.contains('C'));
    }

    #[test]
    fn pow2_range_inclusive() {
        assert_eq!(pow2_range(128, 1024), vec![128, 256, 512, 1024]);
        assert_eq!(pow2_range(32, 32), vec![32]);
    }

    #[test]
    fn labels_are_letters() {
        assert_eq!(config_label(0), "A");
        assert_eq!(config_label(5), "F");
    }
}
