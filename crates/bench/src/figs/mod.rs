//! One module per paper artifact (see DESIGN.md §3).

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod figa1;
pub mod figa2;
pub mod figa3;
pub mod figa4;
pub mod figa5;
pub mod figa6;
pub mod reliability;
pub mod tables;
pub mod validation;
