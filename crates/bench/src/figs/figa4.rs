//! Fig. A4: relative speedup of the two 2D TP variants over 1D TP for
//! GPT3-1T across all nine systems and every scale.
//!
//! Paper finding: SUMMA helps most in resource-constrained regimes
//! (small scale, A100 capacity, small NVS); plain 2D TP helps more at
//! large scale; speedups shrink with newer GPUs and bigger NVS domains.

use crate::common::pow2_range;
use perfmodel::TpStrategy;
use rayon::prelude::*;
use report::{num, Artifact};
use serde_json::json;
use systems::{system, SystemSpec, ALL_GENERATIONS, ALL_NVS_SIZES};
use txmodel::gpt3_1t;

/// One (system, n) cell of both panels.
fn cell(sys: &SystemSpec, n: u64) -> Option<(f64, f64, f64)> {
    let model = gpt3_1t().config;
    let t =
        |s: TpStrategy| crate::common::plan_best(&model, sys, n, 4096, s).map(|e| e.iteration_time);
    Some((
        t(TpStrategy::OneD)?,
        t(TpStrategy::TwoD)?,
        t(TpStrategy::Summa)?,
    ))
}

/// One sweep point: system name, GPU count, and the `(t_1d, t_2d, t_summa)`
/// iteration times when the point is feasible under all three strategies.
type GridRow = (String, u64, Option<(f64, f64, f64)>);

/// Generates panels (a) SUMMA/1D and (b) 2D/1D as one artifact each.
pub fn generate() -> Vec<Artifact> {
    let mut grid: Vec<GridRow> = Vec::new();
    let mut jobs = Vec::new();
    for gen in ALL_GENERATIONS {
        for nvs in ALL_NVS_SIZES {
            let sys = system(gen, nvs);
            for n in pow2_range(128, 16384) {
                jobs.push((sys.clone(), n));
            }
        }
    }
    grid.par_extend(
        jobs.par_iter()
            .map(|(sys, n)| (sys.name.clone(), *n, cell(sys, *n))),
    );

    let mut a = Artifact::new(
        "figa4a",
        "Fig A4a: SUMMA speedup over 1D TP, GPT3-1T, 9 systems",
        ["system", "gpus", "speedup"],
    );
    let mut b = Artifact::new(
        "figa4b",
        "Fig A4b: 2D TP speedup over 1D TP, GPT3-1T, 9 systems",
        ["system", "gpus", "speedup"],
    );
    for (name, n, v) in grid {
        match v {
            Some((t1, t2, ts)) => {
                a.push(vec![json!(name.clone()), json!(n), num(t1 / ts)]);
                b.push(vec![json!(name), json!(n), num(t1 / t2)]);
            }
            None => {
                a.push(vec![json!(name.clone()), json!(n), serde_json::Value::Null]);
                b.push(vec![json!(name), json!(n), serde_json::Value::Null]);
            }
        }
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedup(art: &Artifact, sys: &str, n: u64) -> Option<f64> {
        art.rows
            .iter()
            .find(|r| r[0].as_str() == Some(sys) && r[1].as_u64() == Some(n))
            .and_then(|r| r[2].as_f64())
    }

    #[test]
    fn summa_shines_in_constrained_regimes() {
        let arts = generate();
        let constrained = speedup(&arts[0], "A100-NVS4", 4096).expect("feasible");
        let comfortable = speedup(&arts[0], "B200-NVS64", 4096).expect("feasible");
        assert!(constrained > 1.0, "A100-NVS4 SUMMA speedup {constrained}");
        assert!(
            constrained > comfortable,
            "constrained {constrained} vs comfortable {comfortable}"
        );
    }

    #[test]
    fn twod_helps_at_large_scale() {
        let arts = generate();
        let small = speedup(&arts[1], "B200-NVS8", 512).unwrap();
        let large = speedup(&arts[1], "B200-NVS8", 16384).unwrap();
        assert!(
            large >= small,
            "2D speedup should grow with scale: {small} → {large}"
        );
        assert!(large > 1.05);
    }

    #[test]
    fn twod_never_slower_than_1d() {
        // 1D is a strict subspace of the 2D search (n2 = 1), so the 2D
        // optimum can never lose.
        let arts = generate();
        for r in &arts[1].rows {
            if let Some(s) = r[2].as_f64() {
                assert!(s >= 0.999, "{r:?}");
            }
        }
    }
}
