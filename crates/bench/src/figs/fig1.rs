//! Fig. 1: GPT3-1T with 1D TP on 16384 B200 (NVS8), PP fixed at np = 64,
//! microbatch 1, sweeping the TP/DP split. Shows the convexity of
//! iteration time in nt and the memory/TP-communication trade-off.

use crate::common::{config_label, eval_row, pinned_eval, EVAL_COLUMNS};
use perfmodel::{ParallelConfig, TpStrategy};
use report::Artifact;
use systems::{system, GpuGeneration, NvsSize};
use txmodel::gpt3_1t;

/// Sweeps nt ∈ {1, 2, 4, 8, 16, 32} with nd = 256/nt (configs A–F).
pub fn generate() -> Artifact {
    let model = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut art = Artifact::new(
        "fig1",
        "Fig 1: vary TP/DP at np=64, bm=1, GPT3-1T 1D TP, 16384×B200 NVS8",
        EVAL_COLUMNS,
    );
    for (i, nt) in [1u64, 2, 4, 8, 16, 32].into_iter().enumerate() {
        let nd = 16384 / 64 / nt;
        let cfg = ParallelConfig::new(TpStrategy::OneD, nt, 1, 64, nd, 1);
        // fmlint::allow(panic-in-lib, reason = "pinned paper configuration; validated by the every_id_generates test")
        cfg.validate(&model, 4096).expect("fig1 config invalid");
        let e = pinned_eval(&model, &sys, &cfg, 4096);
        art.push(eval_row(&config_label(i), &e));
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convex_with_minimum_at_moderate_tp() {
        // Paper Q1(i): "apparent convex behavior ... local minimum around
        // nt = 8".
        let art = generate();
        let times: Vec<f64> = art.rows.iter().map(|r| r[9].as_f64().unwrap()).collect();
        let min_idx = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // Minimum at C (nt=4) or D (nt=8) — the paper's shallow basin.
        assert!(min_idx == 2 || min_idx == 3, "min at {min_idx}: {times:?}");
        // Endpoints are worse than the basin.
        assert!(times[0] > times[min_idx]);
        assert!(times[5] > times[min_idx]);
    }

    #[test]
    fn memory_falls_monotonically_with_tp() {
        let art = generate();
        let mem: Vec<f64> = art.rows.iter().map(|r| r[7].as_f64().unwrap()).collect();
        for w in mem.windows(2) {
            assert!(w[1] < w[0], "{mem:?}");
        }
    }

    #[test]
    fn tp_comm_share_grows_with_nt() {
        let art = generate();
        let tp: Vec<f64> = art.rows.iter().map(|r| r[10].as_f64().unwrap()).collect();
        assert!(tp[5] > tp[1], "{tp:?}");
    }

    #[test]
    fn config_d_matches_paper() {
        let art = generate();
        let d = &art.rows[3];
        assert_eq!(d[1].as_u64().unwrap(), 8); // nt
        assert_eq!(d[4].as_u64().unwrap(), 32); // nd
        assert_eq!(d[6].as_u64().unwrap(), 128); // m
        assert!(d[8].as_bool().unwrap()); // feasible
    }
}
