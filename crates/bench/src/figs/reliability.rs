//! Reliability layer artifacts (no paper counterpart — the failure-aware
//! planning extension):
//!
//! * `reliability-validation` — analytic expected-goodput model vs the
//!   fault-injected trainsim replay on directed fault scenarios: the
//!   empirical check on the Young/Daly interval, the stationary
//!   duty-cycle inflations and the independence assumption, with the
//!   per-scenario disagreement quantified.
//! * `reliability-planner` — the acceptance experiment: on GPT3-175B at
//!   4096 B200s with datacenter failure rates, the `IterationTime`
//!   optimum and the `ExpectedGoodput` optimum are *different
//!   configurations* — the fastest plan checkpoints expensively and
//!   exposes cross-domain tensor parallelism to degraded links, so a
//!   slightly slower plan delivers more training progress per wall-clock
//!   day.

use perfmodel::{evaluate, Objective, ParallelConfig, Placement, Planner, TpStrategy};
use report::{num, Artifact};
use serde_json::json;
use systems::{system, GpuGeneration, NvsSize, ReliabilitySpec, SystemSpec};
use trainsim::{simulate_training, FaultPlan, TrainingParams};
use txmodel::gpt3_175b;

const GPUS: u64 = 512;
const BATCH: u64 = 1024;
const DAY: f64 = 86_400.0;

/// The directed fault scenarios of the cross-validation panel.
fn scenarios() -> Vec<(&'static str, ReliabilitySpec, f64)> {
    vec![
        (
            "hard failures only (2k h GPU MTBF)",
            ReliabilitySpec::failure_free()
                .with_gpu_mtbf_hours(2_000.0)
                .with_restart_overhead_s(600.0),
            10.0 * DAY,
        ),
        (
            "link flaps only (0.1/h/link, 120 s @ 0.4x)",
            ReliabilitySpec::failure_free().with_link_flaps(0.4, 0.1, 120.0),
            2.0 * DAY,
        ),
        (
            "stragglers only (p=1e-3, 1.5x, 300 s)",
            ReliabilitySpec::failure_free().with_stragglers(1e-3, 1.5, 300.0),
            2.0 * DAY,
        ),
        (
            "all three combined",
            ReliabilitySpec::failure_free()
                .with_gpu_mtbf_hours(2_000.0)
                .with_restart_overhead_s(600.0)
                .with_link_flaps(0.4, 0.1, 120.0)
                .with_stragglers(1e-3, 1.5, 300.0),
            6.0 * DAY,
        ),
    ]
}

/// Analytic vs replayed delivered-goodput fraction for one spec on the
/// paper's validated 512-GPU configuration.
fn cross_validate(spec: ReliabilitySpec, horizon_s: f64, seed: u64) -> (f64, f64, u64, u64) {
    let model = gpt3_175b().config;
    let cfg = ParallelConfig::new(TpStrategy::OneD, 4, 1, 16, 8, 1);
    let pl = Placement {
        v1: 4,
        v2: 1,
        vp: 1,
        vd: 1,
    };
    let sys: SystemSpec = system(GpuGeneration::A100, NvsSize::Nvs4).with_reliability(spec);
    let e = evaluate(&model, &cfg, &pl, BATCH, &sys);
    let ctx = Planner::new(&model, &sys)
        .global_batch(BATCH)
        .objective_ctx();
    let r = perfmodel::reliability::assess(&e, &ctx);
    let analytic = r.goodput_fraction * e.iteration_time / r.effective_iteration_time;

    let domains = GPUS.div_ceil(sys.nvs_size.max(1)).max(1);
    let plan = FaultPlan::sample(
        &sys.reliability,
        GPUS,
        sys.nics_for(GPUS),
        domains.saturating_sub(1).max(1),
        horizon_s,
        seed,
    );
    let params = TrainingParams::new(
        r.optimal_interval,
        r.checkpoint_time,
        sys.reliability.restart_overhead_s,
    );
    let rep = simulate_training(&model, &cfg, &pl, BATCH, &sys, &plan, &params)
        // fmlint::allow(panic-in-lib, reason = "pinned §IV validation config; the 1F1B schedule supports it by construction")
        .expect("the validated 512-GPU configuration runs the plain 1F1B schedule");
    (
        analytic,
        rep.goodput_fraction,
        rep.restarts,
        rep.checkpoints,
    )
}

/// Panel 1: the analytic-vs-replay cross-validation table.
pub fn generate_validation() -> Artifact {
    let mut art = Artifact::new(
        "reliability-validation",
        "Reliability: analytic expected goodput vs fault-injected replay, \
         GPT3-175B (4,16,8) on 512 A100, b=1024",
        [
            "scenario",
            "analytic_frac",
            "replayed_frac",
            "rel_err_pct",
            "restarts",
            "checkpoints",
        ],
    );
    for (i, (label, spec, horizon)) in scenarios().into_iter().enumerate() {
        let (analytic, replayed, restarts, ckpts) = cross_validate(spec, horizon, 11 + i as u64);
        art.push(vec![
            json!(label),
            num(analytic),
            num(replayed),
            num(100.0 * (analytic - replayed).abs() / analytic.max(replayed)),
            json!(restarts),
            json!(ckpts),
        ]);
    }
    art
}

/// Panel 2: the objective-flip table — best plan under `IterationTime`
/// vs best plan under `ExpectedGoodput` at 4096 B200s.
pub fn generate_planner() -> Artifact {
    let model = gpt3_175b().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let planner = Planner::new(&model, &sys)
        .gpus(4096)
        .global_batch(BATCH)
        .strategy(TpStrategy::OneD);
    let ctx = planner.objective_ctx();
    let mut art = Artifact::new(
        "reliability-planner",
        "Reliability: fastest plan vs highest-goodput plan, GPT3-175B on 4096 B200, b=1024",
        [
            "objective",
            "config (nt,np,nd,mb)",
            "iteration_s",
            "goodput_frac",
            "delivered_tok_per_gpu_s",
            "ckpt_s",
            "ckpt_interval_s",
        ],
    );
    for (name, obj) in [
        ("IterationTime", Objective::IterationTime),
        ("ExpectedGoodput", Objective::ExpectedGoodput),
    ] {
        let plans = planner.clone().objective(obj).execute();
        // fmlint::allow(panic-in-lib, reason = "the pinned 4096-GPU search space always admits the trivial plan")
        let best = plans.best().expect("the 4096-GPU space is non-empty");
        let e = &best.eval;
        let r = perfmodel::reliability::assess(e, &ctx);
        art.push(vec![
            json!(name),
            json!(format!(
                "({},{},{},{})",
                e.config.tensor_parallel(),
                e.config.np,
                e.config.nd,
                e.config.microbatch
            )),
            num(e.iteration_time),
            num(r.goodput_fraction),
            num(r.tokens_per_gpu_second),
            num(r.checkpoint_time),
            num(r.optimal_interval),
        ]);
    }
    art
}

/// Generates both panels.
pub fn generate() -> Vec<Artifact> {
    vec![generate_validation(), generate_planner()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors_within_documented_bands() {
        let art = generate_validation();
        assert_eq!(art.rows.len(), 4);
        for r in &art.rows {
            let err = r[3].as_f64().unwrap();
            // The loosest documented band (independence assumption) is
            // 10%; every directed scenario must stay inside it.
            assert!(err < 10.0, "{}: {err:.1}%", r[0]);
            // ...and each scenario must actually exercise faults.
            assert!(r[1].as_f64().unwrap() < 0.995, "{} cost nothing", r[0]);
        }
    }

    #[test]
    fn planner_panel_shows_the_objective_flip() {
        let art = generate_planner();
        assert_eq!(art.rows.len(), 2);
        let (time_row, good_row) = (&art.rows[0], &art.rows[1]);
        // Different winning configurations...
        assert_ne!(time_row[1], good_row[1]);
        // ...the time optimum is faster failure-free...
        assert!(time_row[2].as_f64().unwrap() < good_row[2].as_f64().unwrap());
        // ...but the goodput optimum delivers more tokens per GPU-second
        // once failures are priced in.
        assert!(good_row[4].as_f64().unwrap() > time_row[4].as_f64().unwrap());
    }
}
