//! Fig. 2: GPT3-1T with 1D TP on 16384 B200, TP fixed at nt = 8,
//! sweeping PP/DP on NVS domain sizes 8 and 64. Shows the dual-bandwidth
//! non-convexity in DP communication and the optimum shifting from high
//! PP (NVS8) to low PP (NVS64).

use crate::common::{config_label, eval_row, pinned_eval, EVAL_COLUMNS};
use perfmodel::{ParallelConfig, TpStrategy};
use report::Artifact;
use systems::{system, GpuGeneration, NvsSize};
use txmodel::gpt3_1t;

/// np sweep used for both panels (configs A–H, high DP → high PP).
const NP_SWEEP: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

fn panel(nvs: NvsSize, suffix: &str) -> Artifact {
    let model = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, nvs);
    let mut art = Artifact::new(
        format!("fig2{suffix}"),
        format!(
            "Fig 2({suffix}): vary PP/DP at nt=8, bm=1, GPT3-1T 1D TP, 16384×{}",
            sys.name
        ),
        EVAL_COLUMNS,
    );
    for (i, np) in NP_SWEEP.into_iter().enumerate() {
        if !model.depth.is_multiple_of(np) {
            continue;
        }
        let nd = 16384 / 8 / np;
        let cfg = ParallelConfig::new(TpStrategy::OneD, 8, 1, np, nd, 1);
        if cfg.validate(&model, 4096).is_err() {
            continue;
        }
        let e = pinned_eval(&model, &sys, &cfg, 4096);
        art.push(eval_row(&config_label(i), &e));
    }
    art
}

/// Generates both panels: (a) NVS8, (b) NVS64.
pub fn generate() -> Vec<Artifact> {
    vec![panel(NvsSize::Nvs8, "a"), panel(NvsSize::Nvs64, "b")]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feasible_min_np(art: &Artifact) -> u64 {
        art.rows
            .iter()
            .filter(|r| r[8].as_bool().unwrap())
            .min_by(|a, b| a[9].as_f64().unwrap().total_cmp(&b[9].as_f64().unwrap()))
            .unwrap()[3]
            .as_u64()
            .unwrap()
    }

    #[test]
    fn nvs8_optimum_is_high_pp() {
        // Paper: local minimum at np = 64 on NVS8.
        let arts = generate();
        let np = feasible_min_np(&arts[0]);
        assert!((32..=128).contains(&np), "NVS8 best np = {np}");
    }

    #[test]
    fn nvs64_optimum_shifts_to_low_pp() {
        // Paper: with NVS64 the minimum shifts to small np (DP-heavy).
        let arts = generate();
        let np8 = feasible_min_np(&arts[0]);
        let np64 = feasible_min_np(&arts[1]);
        assert!(
            np64 < np8,
            "NVS64 best np {np64} should be below NVS8 best {np8}"
        );
        assert!(np64 <= 16, "NVS64 best np = {np64}");
    }

    #[test]
    fn lowest_pp_is_fastest_but_infeasible_on_nvs64() {
        // Paper: "while np = 1 is fastest, it is infeasible on a B200
        // due to high HBM capacity required".
        let arts = generate();
        let low_pp: Vec<_> = arts[1]
            .rows
            .iter()
            .filter(|r| r[3].as_u64().unwrap() <= 2)
            .collect();
        assert!(
            low_pp.iter().all(|r| !r[8].as_bool().unwrap()),
            "np≤2 should overflow HBM"
        );
        let t_low = low_pp
            .iter()
            .map(|r| r[9].as_f64().unwrap())
            .fold(f64::MAX, f64::min);
        let t_rest = arts[1]
            .rows
            .iter()
            .filter(|r| r[3].as_u64().unwrap() > 2)
            .map(|r| r[9].as_f64().unwrap())
            .fold(f64::MAX, f64::min);
        assert!(t_low < t_rest, "low PP should be fastest ignoring memory");
    }

    #[test]
    fn both_panels_have_eight_configs() {
        for a in generate() {
            assert_eq!(a.rows.len(), 8, "{}", a.id);
        }
    }
}
