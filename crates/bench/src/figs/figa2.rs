//! Fig. A2: plain 2D TP n1/n2 sweeps on 16384 B200 NVS64:
//! (a) GPT3-1T — high-DP (nt=32, np=1) vs high-PP (nt=8, np=128) splits;
//! (b) ViT-64K — nt=16 with np=1 then np=16.
//!
//! Paper finding: 2D TP behaves like SUMMA but with far higher memory in
//! the low-PP configurations (replicated weights/activations), so the
//! high-PP side is chosen for GPT3-1T; the ViT's memory is sensitive to
//! the n1/n2 balance.

use crate::common::{config_label, eval_row, pinned_eval, EVAL_COLUMNS};
use perfmodel::{ParallelConfig, TpStrategy};
use report::Artifact;
use systems::{system, GpuGeneration, NvsSize};
use txmodel::{gpt3_1t, vit_64k};

fn sweep(
    id: &str,
    title: &str,
    model: &txmodel::TransformerConfig,
    parts: &[(u64, u64, u64, u64, u64)], // (n1, n2, np, nd, bm)
) -> Artifact {
    let sys = system(GpuGeneration::B200, NvsSize::Nvs64);
    let mut art = Artifact::new(id, title, EVAL_COLUMNS);
    for (i, &(n1, n2, np, nd, bm)) in parts.iter().enumerate() {
        let cfg = ParallelConfig::new(TpStrategy::TwoD, n1, n2, np, nd, bm);
        if cfg.validate(model, 4096).is_err() {
            continue;
        }
        let e = pinned_eval(model, &sys, &cfg, 4096);
        art.push(eval_row(&config_label(i), &e));
    }
    art
}

/// Generates panels (a) GPT3-1T and (b) ViT-64K.
pub fn generate() -> Vec<Artifact> {
    let a = sweep(
        "figa2a",
        "Fig A2a: 2D TP n1/n2 sweep, GPT3-1T, 16384×B200 NVS64",
        &gpt3_1t().config,
        &[
            // High-DP side: nt=32, np=1, nd=512, bm=8 (m=1).
            (32, 1, 1, 512, 8),
            (16, 2, 1, 512, 8),
            (8, 4, 1, 512, 8),
            (4, 8, 1, 512, 8),
            (2, 16, 1, 512, 8),
            // High-PP side: nt=8, np=128, nd=16, bm=1 (m=256).
            (8, 1, 128, 16, 1),
            (4, 2, 128, 16, 1),
            (2, 4, 128, 16, 1),
            (1, 8, 128, 16, 1),
        ],
    );
    let b = sweep(
        "figa2b",
        "Fig A2b: 2D TP n1/n2 sweep, ViT-64K, 16384×B200 NVS64",
        &vit_64k().config,
        &[
            // nt = 16, np = 1, nd = 1024, bm = 1 (m = 4).
            (16, 1, 1, 1024, 1),
            (8, 2, 1, 1024, 1),
            (4, 4, 1, 1024, 1),
            (2, 8, 1, 1024, 1),
            (1, 16, 1, 1024, 1),
            // nt = 16, np = 16, nd = 64, bm = 1 (m = 64).
            (16, 1, 16, 64, 1),
            (8, 2, 16, 64, 1),
            (4, 4, 16, 64, 1),
            (2, 8, 16, 64, 1),
            (1, 16, 16, 64, 1),
        ],
    );
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_low_pp_rows_use_lots_of_memory() {
        // Paper: 2D TP low-PP configs "take up a lot of memory" due to
        // shared weights/activations — most should overflow the B200.
        let arts = generate();
        let low_pp_infeasible = arts[0]
            .rows
            .iter()
            .filter(|r| r[3].as_u64() == Some(1) && !r[8].as_bool().unwrap())
            .count();
        assert!(low_pp_infeasible >= 3, "got {low_pp_infeasible}");
    }

    #[test]
    fn gpt_feasible_optimum_is_high_pp() {
        let arts = generate();
        let best = arts[0]
            .rows
            .iter()
            .filter(|r| r[8].as_bool().unwrap())
            .min_by(|a, b| a[9].as_f64().unwrap().total_cmp(&b[9].as_f64().unwrap()))
            .unwrap();
        assert_eq!(best[3].as_u64().unwrap(), 128);
    }

    #[test]
    fn vit_memory_sensitive_to_grid_balance() {
        // Paper: "memory used is sensitive to the choice of n1, n2".
        let arts = generate();
        let mems: Vec<f64> = arts[1]
            .rows
            .iter()
            .filter(|r| r[3].as_u64() == Some(1))
            .map(|r| r[7].as_f64().unwrap())
            .collect();
        let max = mems.iter().cloned().fold(0.0, f64::max);
        let min = mems.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.3, "memory spread too small: {mems:?}");
    }

    #[test]
    fn vit_has_feasible_configs() {
        let arts = generate();
        assert!(arts[1].rows.iter().any(|r| r[8].as_bool().unwrap()));
    }
}
