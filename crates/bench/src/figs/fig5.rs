//! Fig. 5: full-run training time (days) vs GPU count for all nine
//! systems (A100/H200/B200 × NVS4/8/64): (a) GPT3-1T pre-training on 1T
//! tokens with 1D TP, (b) ViT-64K on 80 epochs of 40-year ERA5 with 2D TP.

use crate::common::{plan_best, pow2_range};
use perfmodel::{training_days, TpStrategy};
use report::{num, Artifact};
use serde_json::json;
use systems::{system, ALL_GENERATIONS, ALL_NVS_SIZES};
use txmodel::{gpt3_1t, vit_64k, TrainingWorkload, TransformerConfig};

fn days_sweep(
    id: &str,
    title: &str,
    model: &TransformerConfig,
    strategy: TpStrategy,
    workload: &TrainingWorkload,
    scales: &[u64],
) -> Artifact {
    let mut art = Artifact::new(
        id,
        title,
        ["system", "gpus", "days", "iteration_s", "config"],
    );
    for gen in ALL_GENERATIONS {
        for nvs in ALL_NVS_SIZES {
            let sys = system(gen, nvs);
            for &n in scales {
                let row = plan_best(model, &sys, n, 4096, strategy);
                match row {
                    Some(e) => art.push(vec![
                        json!(sys.name.clone()),
                        json!(n),
                        num(training_days(workload, &e)),
                        num(e.iteration_time),
                        json!(format!("{}", e.config)),
                    ]),
                    None => art.push(vec![
                        json!(sys.name.clone()),
                        json!(n),
                        serde_json::Value::Null,
                        serde_json::Value::Null,
                        json!("infeasible"),
                    ]),
                }
            }
        }
    }
    art
}

/// Fig. 5a: GPT3-1T days-to-train across systems and scales.
pub fn generate_5a() -> Artifact {
    days_sweep(
        "fig5a",
        "Fig 5a: GPT3-1T (1D TP) training days on 1T tokens vs #GPUs, 9 systems",
        &gpt3_1t().config,
        TpStrategy::OneD,
        &TrainingWorkload::gpt3_1t_pretraining(),
        &pow2_range(128, 16384),
    )
}

/// Fig. 5b: ViT-64K days-to-train across systems and scales.
pub fn generate_5b() -> Artifact {
    days_sweep(
        "fig5b",
        "Fig 5b: ViT-64K (2D TP) training days on 80×ERA5-40y vs #GPUs, 9 systems",
        &vit_64k().config,
        TpStrategy::TwoD,
        &TrainingWorkload::vit_era5_training(),
        &pow2_range(32, 16384),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn days(art: &Artifact, system: &str, n: u64) -> Option<f64> {
        art.rows
            .iter()
            .find(|r| r[0].as_str() == Some(system) && r[1].as_u64() == Some(n))
            .and_then(|r| r[2].as_f64())
    }

    #[test]
    fn gpt_generation_speedups() {
        // Paper: O(30) days on 16K A100 dropping to O(3–5) on B200.
        let art = generate_5a();
        let a100 = days(&art, "A100-NVS8", 16384).expect("A100 16K feasible");
        let b200 = days(&art, "B200-NVS8", 16384).expect("B200 16K feasible");
        assert!(a100 > 15.0 && a100 < 60.0, "A100 {a100}");
        assert!(b200 > 2.0 && b200 < 8.0, "B200 {b200}");
        assert!(a100 / b200 > 4.0, "generation speedup {}", a100 / b200);
    }

    #[test]
    fn gpt_nvs_effect_grows_at_scale() {
        // Paper: NVS effects show at the largest scales for GPT3-1T.
        let art = generate_5a();
        let ratio_at = |n: u64| {
            let s8 = days(&art, "B200-NVS8", n).unwrap();
            let s64 = days(&art, "B200-NVS64", n).unwrap();
            s8 / s64
        };
        assert!(
            ratio_at(16384) >= ratio_at(2048) * 0.99,
            "NVS effect should not shrink at scale"
        );
        assert!(ratio_at(16384) >= 1.0);
    }

    #[test]
    fn vit_nvs_effect_is_uniform_and_real() {
        // Paper: NVS domain size effects are seen throughout for the ViT.
        let art = generate_5b();
        let mut counted = 0;
        for n in [512u64, 2048, 8192] {
            let (Some(s4), Some(s64)) = (days(&art, "B200-NVS4", n), days(&art, "B200-NVS64", n))
            else {
                continue;
            };
            assert!(s4 >= s64, "NVS64 never slower (n={n})");
            if s4 / s64 > 1.05 {
                counted += 1;
            }
        }
        assert!(counted >= 2, "NVS effect should be visible at most scales");
    }

    #[test]
    fn vit_days_in_paper_range_at_16k() {
        // Paper Fig A6b scale: roughly 1.5–3 days on 8–16K B200.
        let art = generate_5b();
        let d = days(&art, "B200-NVS8", 16384).expect("feasible");
        assert!(d > 0.3 && d < 6.0, "got {d}");
    }
}
