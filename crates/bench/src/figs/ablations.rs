//! Ablation studies for the paper's Limitations section — the
//! optimizations the authors list as not-yet-modeled, implemented here as
//! extensions and quantified against the baseline:
//!
//! * interleaved pipeline schedules (bubble ÷ v, P2P × v, +memory);
//! * TP-communication overlap with compute;
//! * ZeRO-3-style weight/gradient sharding over the DP group.

use crate::common::{eval_row, pinned_eval, planner, EVAL_COLUMNS};
use perfmodel::{evaluate_with_tp_overlap, ParallelConfig, TpStrategy};
use report::{num, Artifact};
use serde_json::json;
use systems::{system, GpuGeneration, NvsSize};
use txmodel::{gpt3_1t, vit_64k};

/// Interleaved-schedule ablation: GPT3-1T at 16384 B200-NVS8, the Fig. 1
/// config D shape with interleave ∈ {1, 2, 4, 8}, plus a full search with
/// interleaving enabled.
pub fn interleave() -> Artifact {
    let model = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut art = Artifact::new(
        "ablation_interleave",
        "Ablation: interleaved pipeline schedule, GPT3-1T, 16384×B200 NVS8",
        EVAL_COLUMNS,
    );
    // np = 16 leaves 8 layers per stage so interleave degrees up to 8
    // remain valid; the larger relative bubble (m = 32) makes the
    // schedule effect visible.
    for v in [1u64, 2, 4, 8] {
        let cfg = ParallelConfig {
            interleave: v,
            ..ParallelConfig::new(TpStrategy::OneD, 8, 1, 16, 128, 1)
        };
        if cfg.validate(&model, 4096).is_err() {
            continue;
        }
        let e = pinned_eval(&model, &sys, &cfg, 4096);
        art.push(eval_row(&format!("v={v}"), &e));
    }
    // Full search with interleaving allowed.
    let plans = planner(&model, &sys, 16384, 4096, TpStrategy::OneD)
        .with_space(|s| s.max_interleave(8))
        .execute();
    if let Some(e) = plans.best().map(|p| p.eval.clone()) {
        art.push(eval_row(
            &format!("search(v={}):best", e.config.interleave),
            &e,
        ));
    }
    art
}

/// TP-overlap ablation: how much do the two model classes gain if a
/// fraction of tensor-parallel communication hides behind compute?
pub fn tp_overlap() -> Artifact {
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut art = Artifact::new(
        "ablation_tp_overlap",
        "Ablation: TP communication overlap fraction, 16384×B200 NVS8",
        ["model", "overlap", "t_iter_s", "speedup_vs_baseline"],
    );
    let cases = [
        (
            "GPT3-1T/1D",
            gpt3_1t().config,
            ParallelConfig::new(TpStrategy::OneD, 8, 1, 64, 32, 1),
        ),
        (
            "ViT-64K/2D",
            vit_64k().config,
            ParallelConfig::new(TpStrategy::TwoD, 4, 4, 2, 512, 1),
        ),
    ];
    for (name, model, cfg) in cases {
        let base = pinned_eval(&model, &sys, &cfg, 4096);
        for overlap in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let e = evaluate_with_tp_overlap(&model, &cfg, &base.placement, 4096, &sys, overlap);
            art.push(vec![
                json!(name),
                num(overlap),
                num(e.iteration_time),
                num(base.iteration_time / e.iteration_time),
            ]);
        }
    }
    art
}

/// ZeRO-3 ablation: memory/time trade on a DP-heavy GPT configuration and
/// whether the enlarged search ever picks it.
pub fn zero3() -> Artifact {
    let model = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut art = Artifact::new(
        "ablation_zero3",
        "Ablation: ZeRO-3 weight sharding, GPT3-1T, 16384×B200 NVS8",
        EVAL_COLUMNS,
    );
    for (label, zero3) in [("baseline", false), ("zero3", true)] {
        let cfg = ParallelConfig {
            zero3,
            ..ParallelConfig::new(TpStrategy::OneD, 8, 1, 16, 128, 1)
        };
        let e = pinned_eval(&model, &sys, &cfg, 4096);
        art.push(eval_row(label, &e));
    }
    let plans = planner(&model, &sys, 16384, 4096, TpStrategy::OneD)
        .with_space(|s| s.allow_zero3(true))
        .execute();
    if let Some(e) = plans.best().map(|p| p.eval.clone()) {
        art.push(eval_row(
            if e.config.zero3 {
                "search:best (zero3)"
            } else {
                "search:best (baseline)"
            },
            &e,
        ));
    }
    art
}

/// All three ablations.
pub fn generate() -> Vec<Artifact> {
    vec![interleave(), tp_overlap(), zero3()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_helps_at_fig1_config_d() {
        let art = interleave();
        let t = |label: &str| {
            art.rows
                .iter()
                .find(|r| r[0].as_str() == Some(label))
                .map(|r| r[9].as_f64().unwrap())
        };
        let (t1, t2) = (t("v=1").unwrap(), t("v=2").unwrap());
        assert!(t2 < t1, "v=2 {t2} should beat v=1 {t1}");
        // Diminishing returns / P2P costs: v=8 is not 8× better.
        let t8 = t("v=8").unwrap();
        assert!(t8 > t1 / 2.0);
    }

    #[test]
    fn interleaved_search_beats_baseline_search() {
        let art = interleave();
        let best = art.rows.last().unwrap();
        assert!(best[0].as_str().unwrap().starts_with("search"));
        let t_best = best[9].as_f64().unwrap();
        let t_v1 = art.rows[0][9].as_f64().unwrap();
        assert!(t_best < t_v1);
    }

    #[test]
    fn overlap_speedup_monotone() {
        let art = tp_overlap();
        for model in ["GPT3-1T/1D", "ViT-64K/2D"] {
            let speedups: Vec<f64> = art
                .rows
                .iter()
                .filter(|r| r[0].as_str() == Some(model))
                .map(|r| r[3].as_f64().unwrap())
                .collect();
            assert_eq!(speedups.len(), 5);
            for w in speedups.windows(2) {
                assert!(w[1] >= w[0] - 1e-12);
            }
            assert!(speedups[4] > 1.05, "{model}: full overlap should help >5%");
        }
    }

    #[test]
    fn vit_gains_more_from_overlap_than_gpt() {
        // The ViT is TP-comm-bound (Fig 4b), so overlap helps it more.
        let art = tp_overlap();
        let full = |model: &str| {
            art.rows
                .iter()
                .find(|r| r[0].as_str() == Some(model) && r[1].as_f64() == Some(1.0))
                .unwrap()[3]
                .as_f64()
                .unwrap()
        };
        assert!(full("ViT-64K/2D") > full("GPT3-1T/1D"));
    }

    #[test]
    fn zero3_shrinks_memory() {
        let art = zero3();
        let mem = |label: &str| {
            art.rows
                .iter()
                .find(|r| r[0].as_str() == Some(label))
                .unwrap()[7]
                .as_f64()
                .unwrap()
        };
        assert!(mem("zero3") < mem("baseline"));
    }
}
