//! Fig. A1: AllGather time vs communication volume on 32 Perlmutter-class
//! A100 GPUs — analytic formula ("Theoretical") vs the netsim
//! discrete-event simulation ("Empirical" substitute), for 2 and 4 GPUs
//! per node (NVL2 / NVL4).

use collectives::{collective_time, Collective, CommGroup};
use netsim::{simulate_collective, SimOptions};
use report::{num, Artifact};
use serde_json::json;
use systems::perlmutter;

/// Volumes swept, bytes (the paper spans ~1 MB to ~10 GB, log-spaced).
fn volumes() -> Vec<f64> {
    (0..14).map(|i| 1e6 * 2f64.powi(i)).collect()
}

/// Generates the comparison rows for NVL ∈ {2, 4}.
pub fn generate() -> Artifact {
    let mut art = Artifact::new(
        "figa1",
        "Fig A1: AG time vs volume on 32 A100 (Perlmutter-like), analytic vs DES",
        [
            "nvl",
            "volume_mb",
            "theoretical_s",
            "empirical_s",
            "rel_err",
        ],
    );
    for nvl in [2u64, 4] {
        let sys = perlmutter(nvl);
        let group = CommGroup::new(32, nvl);
        for v in volumes() {
            let theo = collective_time(Collective::AllGather, v, group, &sys);
            let sim = simulate_collective(
                Collective::AllGather,
                v,
                group,
                &sys,
                &SimOptions::default(),
            )
            .time;
            art.push(vec![
                json!(nvl),
                num(v / 1e6),
                num(theo),
                num(sim),
                num((sim - theo).abs() / theo),
            ]);
        }
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_is_good_at_bandwidth_regime() {
        let art = generate();
        for r in &art.rows {
            let v = r[1].as_f64().unwrap();
            let err = r[4].as_f64().unwrap();
            if v >= 64.0 {
                assert!(err < 0.15, "vol {v} MB: err {err}");
            } else {
                assert!(err < 0.45, "vol {v} MB: err {err}");
            }
        }
    }

    #[test]
    fn nvl4_is_faster_than_nvl2_everywhere_large() {
        let art = generate();
        let sim = |nvl: u64, vmb: f64| {
            art.rows
                .iter()
                .find(|r| r[0].as_u64() == Some(nvl) && r[1].as_f64() == Some(vmb))
                .unwrap()[3]
                .as_f64()
                .unwrap()
        };
        for vmb in [128.0, 1024.0, 8192.0] {
            assert!(sim(4, vmb) < sim(2, vmb), "at {vmb} MB");
        }
    }

    #[test]
    fn covers_both_nvl_settings_across_four_decades() {
        let art = generate();
        assert_eq!(art.rows.len(), 28);
    }
}
