//! §IV Empirical Validation substitute: analytic model vs the trainsim
//! 1F1B schedule simulator on the paper's 512-GPU Perlmutter setting
//! (global batch 1024) for GPT3-175B and the 32K ViT, optimal and
//! sub-optimal configurations.

use perfmodel::{ParallelConfig, Placement, TpStrategy};
use report::{num, Artifact};
use serde_json::json;
use systems::perlmutter;
use trainsim::{compare, SimParams};
use txmodel::{gpt3_175b, vit_32k};

/// The validation configuration set: mirrors the paper's optimal +
/// sub-optimal configurations for both models.
fn cases() -> Vec<(
    String,
    txmodel::TransformerConfig,
    ParallelConfig,
    Placement,
)> {
    let gpt = gpt3_175b().config;
    let vit = vit_32k().config;
    let pl = |v1: u64, v2: u64, vp: u64, vd: u64| Placement { v1, v2, vp, vd };
    vec![
        (
            "GPT3-175B optimal (4,16,8,1)".into(),
            gpt,
            ParallelConfig::new(TpStrategy::OneD, 4, 1, 16, 8, 1),
            pl(4, 1, 1, 1),
        ),
        (
            "GPT3-175B sub (8,16,4,1)".into(),
            gpt,
            ParallelConfig::new(TpStrategy::OneD, 8, 1, 16, 4, 1),
            pl(4, 1, 1, 1),
        ),
        (
            "GPT3-175B sub (16,8,4,1)".into(),
            gpt,
            ParallelConfig::new(TpStrategy::OneD, 16, 1, 8, 4, 1),
            pl(4, 1, 1, 1),
        ),
        (
            "GPT3-175B sub (4,32,4,1)".into(),
            gpt,
            ParallelConfig::new(TpStrategy::OneD, 4, 1, 32, 4, 1),
            pl(4, 1, 1, 1),
        ),
        (
            "GPT3-175B sub (2,32,8,1)".into(),
            gpt,
            ParallelConfig::new(TpStrategy::OneD, 2, 1, 32, 8, 1),
            pl(2, 1, 2, 1),
        ),
        (
            "ViT-32K near-opt (2,4,4,16,1)".into(),
            vit,
            ParallelConfig::new(TpStrategy::TwoD, 2, 4, 4, 16, 1),
            pl(2, 2, 1, 1),
        ),
        (
            "ViT-32K sub (4,4,2,16,1)".into(),
            vit,
            ParallelConfig::new(TpStrategy::TwoD, 4, 4, 2, 16, 1),
            pl(4, 1, 1, 1),
        ),
        (
            "ViT-32K sub (2,8,4,8,1)".into(),
            vit,
            ParallelConfig::new(TpStrategy::TwoD, 2, 8, 4, 8, 1),
            pl(2, 2, 1, 1),
        ),
    ]
}

/// Generates the analytic-vs-simulated table.
pub fn generate() -> Artifact {
    let sys = perlmutter(4);
    let mut art = Artifact::new(
        "validation",
        "§IV validation: analytic vs 1F1B schedule simulation, 512 A100 (Perlmutter), b=1024",
        ["config", "analytic_s", "simulated_s", "rel_err_pct"],
    );
    for (label, model, cfg, pl) in cases() {
        let row = compare(&label, &model, &cfg, &pl, 1024, &sys, &SimParams::default())
            // fmlint::allow(panic-in-lib, reason = "pinned §IV validation cases; all run the plain 1F1B schedule")
            .expect("every validation case runs the plain 1F1B schedule");
        art.push(vec![
            json!(label),
            num(row.analytic),
            num(row.simulated),
            num(100.0 * row.rel_err()),
        ]);
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_errors_within_paper_band() {
        // Paper reports 2–26% against Megatron-LM; against our schedule
        // simulator every configuration must stay under 30%.
        let art = generate();
        assert_eq!(art.rows.len(), 8);
        for r in &art.rows {
            let err = r[3].as_f64().unwrap();
            assert!(err < 30.0, "{}: {err:.1}%", r[0]);
        }
    }

    #[test]
    fn optimal_config_error_is_small() {
        let art = generate();
        let opt = art
            .rows
            .iter()
            .find(|r| r[0].as_str().unwrap().contains("optimal"))
            .unwrap();
        assert!(opt[3].as_f64().unwrap() < 15.0);
    }

    #[test]
    fn predictions_track_simulations_in_order() {
        // Paper: "performance trends between observed and predicted
        // iteration times are consistent". Check rank agreement for the
        // GPT rows.
        let art = generate();
        let mut gpt_rows: Vec<(f64, f64)> = art
            .rows
            .iter()
            .filter(|r| r[0].as_str().unwrap().starts_with("GPT"))
            .map(|r| (r[1].as_f64().unwrap(), r[2].as_f64().unwrap()))
            .collect();
        gpt_rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut violations = 0;
        for w in gpt_rows.windows(2) {
            if w[1].1 < w[0].1 * 0.95 {
                violations += 1;
            }
        }
        assert!(violations <= 1, "too many trend violations: {gpt_rows:?}");
    }
}
