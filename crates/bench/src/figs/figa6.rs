//! Fig. A6: memory-technology sweep — training days on 8192 GPUs as a
//! function of HBM capacity (x) and HBM bandwidth (y) with B200 compute
//! and network held fixed: (a) GPT3-1T 1D TP, (b) ViT-64K 2D TP.
//!
//! Paper finding: high-capacity/low-bandwidth corners (LPDDR-class
//! memory) are competitive with the B200 point for both models — less
//! parallelism inefficiency traded for more memory-access time.

use perfmodel::{training_days, TpStrategy};
use rayon::prelude::*;
use report::{num, Artifact};
use systems::{GpuGeneration, NvsSize, SystemBuilder};
use txmodel::{gpt3_1t, vit_64k, TrainingWorkload, TransformerConfig};

/// x-axis: HBM capacity in TB.
const CAP_POINTS: [f64; 6] = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
/// y-axis: HBM bandwidth in TB/s.
const BW_POINTS: [f64; 6] = [2.0, 4.0, 8.0, 10.0, 13.0, 16.0];

fn grid(
    id: &str,
    title: &str,
    model: &TransformerConfig,
    strategy: TpStrategy,
    workload: &TrainingWorkload,
) -> Artifact {
    let mut art = Artifact::new(id, title, ["hbm_cap_tb", "hbm_bw_tbs", "days"]);
    let mut points = Vec::new();
    for &cap in &CAP_POINTS {
        for &bw in &BW_POINTS {
            points.push((cap, bw));
        }
    }
    let rows: Vec<_> = points
        .par_iter()
        .map(|&(cap, bw)| {
            let sys = SystemBuilder::from_catalog(GpuGeneration::B200, NvsSize::Nvs8)
                .hbm_capacity(cap * 1e12)
                .hbm_bandwidth(bw * 1e12)
                .build();
            let days = crate::common::plan_best(model, &sys, 8192, 4096, strategy)
                .map(|e| training_days(workload, &e));
            (cap, bw, days)
        })
        .collect();
    for (cap, bw, days) in rows {
        art.push(vec![
            num(cap),
            num(bw),
            days.map(num).unwrap_or(serde_json::Value::Null),
        ]);
    }
    art
}

/// Generates panels (a) GPT3-1T and (b) ViT-64K.
pub fn generate() -> Vec<Artifact> {
    vec![
        grid(
            "figa6a",
            "Fig A6a: GPT3-1T days on 8192 GPUs vs HBM capacity × bandwidth (B200 compute)",
            &gpt3_1t().config,
            TpStrategy::OneD,
            &TrainingWorkload::gpt3_1t_pretraining(),
        ),
        grid(
            "figa6b",
            "Fig A6b: ViT-64K days on 8192 GPUs vs HBM capacity × bandwidth (B200 compute)",
            &vit_64k().config,
            TpStrategy::TwoD,
            &TrainingWorkload::vit_era5_training(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn days(art: &Artifact, cap: f64, bw: f64) -> Option<f64> {
        art.rows
            .iter()
            .find(|r| r[0].as_f64() == Some(cap) && r[1].as_f64() == Some(bw))
            .and_then(|r| r[2].as_f64())
    }

    #[test]
    fn lpddr_corner_is_competitive_for_gpt() {
        // High capacity + low bandwidth ≈ B200 point (192 GB, 8 TB/s).
        let arts = generate();
        let b200ish = days(&arts[0], 0.2, 8.0).expect("B200-like point feasible");
        let lpddr = days(&arts[0], 1.0, 2.0).expect("LPDDR-like point feasible");
        assert!(lpddr < 1.5 * b200ish, "LPDDR {lpddr} vs B200 {b200ish}");
    }

    #[test]
    fn lpddr_corner_is_competitive_for_vit() {
        let arts = generate();
        let b200ish = days(&arts[1], 0.2, 8.0).expect("feasible");
        let lpddr = days(&arts[1], 1.0, 2.0).expect("feasible");
        assert!(lpddr < 1.8 * b200ish, "LPDDR {lpddr} vs B200 {b200ish}");
    }

    #[test]
    fn tiny_capacity_hurts_the_vit_more() {
        // Paper: "smaller capacities showing poorer performance" for the
        // ViT, with multiple inflection points.
        let arts = generate();
        let ratio = |art: &Artifact| {
            let small = days(art, 0.1, 8.0);
            let big = days(art, 0.8, 8.0);
            match (small, big) {
                (Some(s), Some(b)) => s / b,
                // Infeasible at 100 GB counts as "hurts more".
                (None, Some(_)) => f64::INFINITY,
                _ => 1.0,
            }
        };
        assert!(ratio(&arts[1]) >= ratio(&arts[0]) * 0.99);
    }

    #[test]
    fn bandwidth_effect_saturates_for_gpt() {
        let arts = generate();
        let mid = days(&arts[0], 0.4, 8.0).unwrap();
        let high = days(&arts[0], 0.4, 16.0).unwrap();
        assert!(
            mid / high < 1.2,
            "beyond-HBM bandwidth should barely help GPT"
        );
    }
}
