//! Fig. A3: optimal-configuration scaling on the large NVS64 domain,
//! B200: (a) GPT3-1T with 1D TP (reduced PP at scale vs NVS8), (b)
//! GPT3-1T with 2D TP SUMMA (mostly-1D splits chosen).

use crate::common::{eval_row, pow2_range, EVAL_COLUMNS};
use perfmodel::TpStrategy;
use report::Artifact;
use serde_json::json;
use systems::{system, GpuGeneration, NvsSize};
use txmodel::gpt3_1t;

fn scaling(id: &str, title: &str, strategy: TpStrategy) -> Artifact {
    let model = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, NvsSize::Nvs64);
    let mut art = Artifact::new(id, title, EVAL_COLUMNS);
    for n in pow2_range(128, 16384) {
        match crate::common::plan_best(&model, &sys, n, 4096, strategy) {
            Some(e) => art.push(eval_row(&n.to_string(), &e)),
            None => {
                let mut row = vec![json!(n.to_string())];
                row.extend(std::iter::repeat_n(
                    serde_json::Value::Null,
                    EVAL_COLUMNS.len() - 1,
                ));
                art.push(row);
            }
        }
    }
    art
}

/// Generates panels (a) 1D TP and (b) SUMMA on NVS64.
pub fn generate() -> Vec<Artifact> {
    vec![
        scaling(
            "figa3a",
            "Fig A3a: optimal 1D TP vs #GPUs, GPT3-1T, B200 NVS64",
            TpStrategy::OneD,
        ),
        scaling(
            "figa3b",
            "Fig A3b: optimal 2D TP SUMMA vs #GPUs, GPT3-1T, B200 NVS64",
            TpStrategy::Summa,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figs::fig4::generate_4a;

    #[test]
    fn nvs64_reduces_pp_at_scale_relative_to_nvs8() {
        // Paper: "1D TP on larger NVS domain shows reduced PP at scale".
        let a3 = generate()[0].clone();
        let f4 = generate_4a();
        let np_of = |art: &Artifact, n: &str| {
            art.rows
                .iter()
                .find(|r| r[0].as_str() == Some(n))
                .and_then(|r| r[3].as_u64())
        };
        let (Some(np64), Some(np8)) = (np_of(&a3, "16384"), np_of(&f4, "16384")) else {
            panic!("16384 must be feasible in both");
        };
        assert!(np64 <= np8, "NVS64 np {np64} should be ≤ NVS8 np {np8}");
    }

    #[test]
    fn summa_mostly_chooses_1d_splits() {
        // Paper: "the model effectively chooses 1D TP at most scales".
        let arts = generate();
        let rows: Vec<_> = arts[1].rows.iter().filter(|r| !r[2].is_null()).collect();
        let oned = rows.iter().filter(|r| r[2].as_u64() == Some(1)).count();
        assert!(
            oned * 2 >= rows.len(),
            "expected n2=1 in at least half the scales ({oned}/{})",
            rows.len()
        );
    }

    #[test]
    fn times_scale_down_monotonically() {
        for art in generate() {
            let times: Vec<f64> = art.rows.iter().filter_map(|r| r[9].as_f64()).collect();
            for w in times.windows(2) {
                assert!(w[1] < w[0], "{}: {times:?}", art.id);
            }
        }
    }
}
