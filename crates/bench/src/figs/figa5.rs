//! Fig. A5: co-design sweep — training days on 8192 GPUs as a function of
//! tensor-core rate (y) and coupled HBM capacity+bandwidth (x), with the
//! B200 network held fixed (NVS8): (a) GPT3-1T 1D TP, (b) ViT-64K 2D TP.
//!
//! Paper finding: FLOP rate is the primary axis for GPT3-1T (near-vertical
//! contours); the ViT is additionally sensitive to capacity/bandwidth.

use perfmodel::{training_days, TpStrategy};
use rayon::prelude::*;
use report::{num, Artifact};
use systems::{GpuGeneration, NvsSize, SystemBuilder};
use txmodel::{gpt3_1t, vit_64k, TrainingWorkload, TransformerConfig};

/// x-axis: coupled (capacity GB, bandwidth TB/s) pairs, A100 → beyond-B200.
const MEM_POINTS: [(f64, f64); 6] = [
    (80.0, 1.555),
    (120.0, 3.0),
    (160.0, 5.0),
    (200.0, 8.0),
    (280.0, 12.0),
    (350.0, 16.0),
];

/// y-axis: tensor-core TFLOPs/s.
const FLOP_POINTS: [f64; 6] = [500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3500.0];

fn grid(
    id: &str,
    title: &str,
    model: &TransformerConfig,
    strategy: TpStrategy,
    workload: &TrainingWorkload,
) -> Artifact {
    let mut art = Artifact::new(
        id,
        title,
        ["tensor_tflops", "hbm_cap_gb", "hbm_bw_tbs", "days"],
    );
    let mut points = Vec::new();
    for &tf in &FLOP_POINTS {
        for &(cap, bw) in &MEM_POINTS {
            points.push((tf, cap, bw));
        }
    }
    let rows: Vec<_> = points
        .par_iter()
        .map(|&(tf, cap, bw)| {
            let sys = SystemBuilder::from_catalog(GpuGeneration::B200, NvsSize::Nvs8)
                .tensor_flops(tf * 1e12)
                .hbm_capacity(cap * 1e9)
                .hbm_bandwidth(bw * 1e12)
                .name(format!("codesign-{tf}-{cap}"))
                .build();
            let days = crate::common::plan_best(model, &sys, 8192, 4096, strategy)
                .map(|e| training_days(workload, &e));
            (tf, cap, bw, days)
        })
        .collect();
    for (tf, cap, bw, days) in rows {
        art.push(vec![
            num(tf),
            num(cap),
            num(bw),
            days.map(num).unwrap_or(serde_json::Value::Null),
        ]);
    }
    art
}

/// Generates panels (a) GPT3-1T and (b) ViT-64K.
pub fn generate() -> Vec<Artifact> {
    vec![
        grid(
            "figa5a",
            "Fig A5a: GPT3-1T days on 8192 GPUs vs FLOP rate × HBM cap+bw (B200 net)",
            &gpt3_1t().config,
            TpStrategy::OneD,
            &TrainingWorkload::gpt3_1t_pretraining(),
        ),
        grid(
            "figa5b",
            "Fig A5b: ViT-64K days on 8192 GPUs vs FLOP rate × HBM cap+bw (B200 net)",
            &vit_64k().config,
            TpStrategy::TwoD,
            &TrainingWorkload::vit_era5_training(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn days(art: &Artifact, tf: f64, cap: f64) -> Option<f64> {
        art.rows
            .iter()
            .find(|r| r[0].as_f64() == Some(tf) && r[1].as_f64() == Some(cap))
            .and_then(|r| r[3].as_f64())
    }

    #[test]
    fn flop_rate_dominates_gpt() {
        let arts = generate();
        let a = &arts[0];
        // Moving up the FLOP axis at fixed memory: large effect.
        let slow = days(a, 500.0, 200.0).unwrap();
        let fast = days(a, 3500.0, 200.0).unwrap();
        assert!(slow / fast > 2.5, "FLOP effect {} → {}", slow, fast);
        // Moving along the memory axis at fixed (high) FLOPs: small effect.
        let lo_mem = days(a, 2500.0, 120.0).unwrap();
        let hi_mem = days(a, 2500.0, 350.0).unwrap();
        assert!(
            lo_mem / hi_mem < 1.6,
            "memory effect {} → {}",
            lo_mem,
            hi_mem
        );
    }

    #[test]
    fn vit_more_sensitive_to_memory_than_gpt() {
        let arts = generate();
        let ratio = |art: &Artifact| {
            let lo = days(art, 2500.0, 120.0).unwrap();
            let hi = days(art, 2500.0, 350.0).unwrap();
            lo / hi
        };
        let g = ratio(&arts[0]);
        let v = ratio(&arts[1]);
        assert!(v > g, "ViT memory sensitivity {v} should exceed GPT's {g}");
    }

    #[test]
    fn grid_is_complete() {
        for art in generate() {
            assert_eq!(art.rows.len(), 36, "{}", art.id);
        }
    }
}
