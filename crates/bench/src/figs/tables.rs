//! Tables I, II, A2 (per-strategy communication structure for one layer)
//! and Table A3 (hardware catalog).

use perfmodel::partition::build_profile;
use perfmodel::plan::{CommPattern, TpGroup};
use perfmodel::TpStrategy;
use report::{num, Artifact};
use serde_json::json;
use systems::{system, GpuGeneration, NvsSize, ALL_GENERATIONS};
use txmodel::gpt3_1t;

/// Emits the communication events of one forward layer pass under
/// `strategy` on an `n1 × n2` grid for GPT3-1T (bm = 1), mirroring the
/// paper's Vol column in concrete megabytes.
fn comm_table(id: &str, title: &str, strategy: TpStrategy, n1: u64, n2: u64, nb: u64) -> Artifact {
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let profile = build_profile(&gpt3_1t().config, strategy, n1, n2, 1, nb, 1, &sys.gpu);
    let mut art = Artifact::new(
        id,
        title,
        ["idx", "kind", "collective", "group", "volume_mb"],
    );
    for (i, c) in profile.fwd.comms.iter().enumerate() {
        let group_name = |g: &TpGroup| match g {
            TpGroup::N1 => format!("n1={n1}"),
            TpGroup::N2 => format!("n2={n2}"),
            TpGroup::Ep => "ep".to_string(),
        };
        match c {
            CommPattern::Exposed {
                coll,
                volume,
                group,
            } => art.push(vec![
                json!(i),
                json!("exposed"),
                json!(coll.abbrev()),
                json!(group_name(group)),
                num(volume / 1e6),
            ]),
            CommPattern::SummaOverlapped {
                vol_a,
                group_a,
                vol_b,
                group_b,
                panels,
                ..
            } => {
                art.push(vec![
                    json!(i),
                    json!(format!("summa(nb={panels})")),
                    json!("B+B"),
                    json!(format!("{} × {}", group_name(group_a), group_name(group_b))),
                    num((vol_a + vol_b) / 1e6),
                ]);
            }
        }
    }
    art
}

/// Table I: 1D TP communication structure (nt = 8).
pub fn table1() -> Artifact {
    comm_table(
        "table1",
        "Table I: 1D TP per-layer collectives, GPT3-1T, nt=8",
        TpStrategy::OneD,
        8,
        1,
        1,
    )
}

/// Table II: 2D TP communication structure (4 × 2 grid).
pub fn table2() -> Artifact {
    comm_table(
        "table2",
        "Table II: 2D TP per-layer collectives, GPT3-1T, n1=4 n2=2",
        TpStrategy::TwoD,
        4,
        2,
        1,
    )
}

/// Table A2: SUMMA communication structure (4 × 2 grid, nb = 4).
pub fn tablea2() -> Artifact {
    comm_table(
        "tablea2",
        "Table A2: 2D TP SUMMA per-layer collectives, GPT3-1T, n1=4 n2=2 nb=4",
        TpStrategy::Summa,
        4,
        2,
        4,
    )
}

/// Table A3: the GPU/network parameter catalog.
pub fn tablea3() -> Artifact {
    let mut art = Artifact::new(
        "tablea3",
        "Table A3: GPU and network parameters per generation",
        [
            "gpu",
            "tensor_tflops",
            "vector_tflops",
            "flops_latency_s",
            "hbm_bw_gbs",
            "hbm_cap_gb",
            "nvs_bw_gbs",
            "nvs_latency_s",
            "ib_bw_gbs",
            "ib_latency_s",
        ],
    );
    for gen in ALL_GENERATIONS {
        let g = gen.gpu();
        let n = gen.network();
        art.push(vec![
            json!(gen.name()),
            num(g.tensor_flops / 1e12),
            num(g.vector_flops / 1e12),
            num(g.flops_latency),
            num(g.hbm_bandwidth / 1e9),
            num(g.hbm_capacity / 1e9),
            num(n.nvs_bandwidth / 1e9),
            num(n.nvs_latency),
            num(n.ib_bandwidth / 1e9),
            num(n.ib_latency),
        ]);
    }
    art
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_ag_rs_rows() {
        let t = table1();
        assert_eq!(t.rows.len(), 4);
        // Table I: volume is b·l·e bytes = 2048·25600·2 / 1e6 ≈ 104.9 MB
        // for every collective.
        for row in &t.rows {
            let mb = row[4].as_f64().unwrap();
            assert!((mb - 104.8576).abs() < 0.01, "got {mb}");
        }
    }

    #[test]
    fn table2_has_six_rows_with_smaller_volumes() {
        let t = table2();
        assert_eq!(t.rows.len(), 6);
        let max_mb = t
            .rows
            .iter()
            .map(|r| r[4].as_f64().unwrap())
            .fold(0.0, f64::max);
        assert!(max_mb < 104.0, "2D volumes must scale down, got {max_mb}");
    }

    #[test]
    fn tablea2_mixes_summa_and_exposed() {
        let t = tablea2();
        let kinds: Vec<String> = t
            .rows
            .iter()
            .map(|r| r[1].as_str().unwrap().to_string())
            .collect();
        assert!(kinds.iter().any(|k| k.starts_with("summa")));
        assert!(kinds.iter().any(|k| k == "exposed"));
    }

    #[test]
    fn tablea3_matches_catalog() {
        let t = tablea3();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], json!("A100"));
        assert_eq!(t.rows[2][1].as_f64().unwrap(), 2500.0);
    }
}
