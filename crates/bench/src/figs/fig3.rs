//! Fig. 3: GPT3-1T with 2D TP SUMMA on 16384 B200, sweeping the n1/n2
//! split in a high-DP regime ((nt, np) = (32, 1), bm = 8) and a high-PP
//! regime ((nt, np) = (8, 128), bm = 1), on NVS 8 and 64.
//!
//! Paper finding: on NVS8 the fastest feasible configuration is pure-1D
//! (n2 = 1) with high PP; on NVS64 the high-DP configurations win.

use crate::common::{config_label, eval_row, pinned_eval, EVAL_COLUMNS};
use perfmodel::{Evaluation, ParallelConfig, TpStrategy};
use report::Artifact;
use systems::{system, GpuGeneration, NvsSize, SystemSpec};
use txmodel::gpt3_1t;

/// High-DP split candidates for nt = 32.
const HIGH_DP_GRIDS: [(u64, u64); 5] = [(32, 1), (16, 2), (8, 4), (4, 8), (2, 16)];
/// High-PP split candidates for nt = 8.
const HIGH_PP_GRIDS: [(u64, u64); 4] = [(8, 1), (4, 2), (2, 4), (1, 8)];

/// Evaluates a SUMMA config at its best panel count.
fn best_nb_eval(
    model: &txmodel::TransformerConfig,
    sys: &SystemSpec,
    n1: u64,
    n2: u64,
    np: u64,
    nd: u64,
    bm: u64,
) -> Option<Evaluation> {
    [1u64, 2, 4, 8, 16]
        .into_iter()
        .filter_map(|nb| {
            let mut cfg = ParallelConfig::new(TpStrategy::Summa, n1, n2, np, nd, bm);
            cfg.summa_panels = nb;
            cfg.validate(model, 4096).ok()?;
            Some(pinned_eval(model, sys, &cfg, 4096))
        })
        .min_by(|a, b| a.iteration_time.total_cmp(&b.iteration_time))
}

fn panel(nvs: NvsSize, suffix: &str) -> Artifact {
    let model = gpt3_1t().config;
    let sys = system(GpuGeneration::B200, nvs);
    let mut art = Artifact::new(
        format!("fig3{suffix}"),
        format!(
            "Fig 3({suffix}): SUMMA n1/n2 sweep, GPT3-1T, 16384×{}",
            sys.name
        ),
        EVAL_COLUMNS,
    );
    let mut i = 0;
    for (n1, n2) in HIGH_DP_GRIDS {
        if let Some(e) = best_nb_eval(&model, &sys, n1, n2, 1, 512, 8) {
            art.push(eval_row(&config_label(i), &e));
        }
        i += 1;
    }
    for (n1, n2) in HIGH_PP_GRIDS {
        if let Some(e) = best_nb_eval(&model, &sys, n1, n2, 128, 16, 1) {
            art.push(eval_row(&config_label(i), &e));
        }
        i += 1;
    }
    art
}

/// Generates both panels: (a) NVS8, (b) NVS64.
pub fn generate() -> Vec<Artifact> {
    vec![panel(NvsSize::Nvs8, "a"), panel(NvsSize::Nvs64, "b")]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn best_feasible(art: &Artifact) -> &Vec<serde_json::Value> {
        art.rows
            .iter()
            .filter(|r| r[8].as_bool().unwrap())
            .min_by(|a, b| a[9].as_f64().unwrap().total_cmp(&b[9].as_f64().unwrap()))
            .expect("some feasible config")
    }

    #[test]
    fn nvs8_prefers_pure_1d_high_pp() {
        // Paper Fig 3a: (n1, n2, np) = (8, 1, 128) fastest.
        let arts = generate();
        let best = best_feasible(&arts[0]);
        assert_eq!(best[2].as_u64().unwrap(), 1, "n2 should be 1 on NVS8");
        assert_eq!(best[3].as_u64().unwrap(), 128, "np should be 128 on NVS8");
    }

    #[test]
    fn nvs64_prefers_high_dp_modulo_memory() {
        // Paper Fig 3b: on NVS64 the fastest configuration is the high-DP
        // (8, 4, np=1) split. Our stricter activation accounting marks
        // that point HBM-infeasible (documented in EXPERIMENTS.md), so we
        // assert the paper's *time* ordering: ignoring feasibility, an
        // np = 1, n2 > 1 split is fastest, and the NVS64 domain improves
        // the high-DP side far more than the high-PP side.
        let arts = generate();
        let raw_best = arts[1]
            .rows
            .iter()
            .min_by(|a, b| a[9].as_f64().unwrap().total_cmp(&b[9].as_f64().unwrap()))
            .unwrap();
        assert_eq!(raw_best[3].as_u64().unwrap(), 1, "np should be 1");
        assert!(raw_best[2].as_u64().unwrap() > 1, "n2 should be > 1");
        let t = |art: &Artifact, label: &str| {
            art.rows
                .iter()
                .find(|r| r[0].as_str() == Some(label))
                .unwrap()[9]
                .as_f64()
                .unwrap()
        };
        // Config C = (8, 4, np=1): NVS64 speeds it up substantially.
        let c_gain = t(&arts[0], "C") / t(&arts[1], "C");
        let f_gain = t(&arts[0], "F") / t(&arts[1], "F");
        assert!(
            c_gain > f_gain,
            "high-DP gain {c_gain:.2} vs high-PP gain {f_gain:.2}"
        );
    }

    #[test]
    fn high_dp_rows_have_single_microbatch() {
        let arts = generate();
        for r in arts[0].rows.iter().filter(|r| r[3].as_u64().unwrap() == 1) {
            assert_eq!(r[6].as_u64().unwrap(), 1); // m = 1
            assert_eq!(r[5].as_u64().unwrap(), 8); // bm = 8
        }
    }
}
