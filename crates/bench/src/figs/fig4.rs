//! Fig. 4: optimal configuration and time breakdown vs GPU count on
//! B200-NVS8: (a) GPT3-1T with 1D TP, (b) the 64K ViT with 2D TP.
//! Each scale runs the full S3 search independently.

use crate::common::{eval_row, plan_best, pow2_range, EVAL_COLUMNS};
use perfmodel::TpStrategy;
use report::Artifact;
use serde_json::json;
use systems::{system, GpuGeneration, NvsSize};
use txmodel::{gpt3_1t, vit_64k, TransformerConfig};

fn scaling(
    id: &str,
    title: &str,
    model: &TransformerConfig,
    strategy: TpStrategy,
    scales: &[u64],
) -> Artifact {
    let sys = system(GpuGeneration::B200, NvsSize::Nvs8);
    let mut art = Artifact::new(id, title, EVAL_COLUMNS);
    for &n in scales {
        match plan_best(model, &sys, n, 4096, strategy) {
            Some(e) => art.push(eval_row(&n.to_string(), &e)),
            None => {
                let mut row = vec![json!(n.to_string())];
                row.extend(std::iter::repeat_n(
                    serde_json::Value::Null,
                    EVAL_COLUMNS.len() - 1,
                ));
                art.push(row);
            }
        }
    }
    art
}

/// Fig. 4a: GPT3-1T, 1D TP, n ∈ 128…16384.
pub fn generate_4a() -> Artifact {
    scaling(
        "fig4a",
        "Fig 4a: optimal 1D TP config vs #GPUs, GPT3-1T, B200 NVS8",
        &gpt3_1t().config,
        TpStrategy::OneD,
        &pow2_range(128, 16384),
    )
}

/// Fig. 4b: ViT-64K, 2D TP, n ∈ 32…16384.
pub fn generate_4b() -> Artifact {
    scaling(
        "fig4b",
        "Fig 4b: optimal 2D TP config vs #GPUs, ViT-64K, B200 NVS8",
        &vit_64k().config,
        TpStrategy::TwoD,
        &pow2_range(32, 16384),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_strong_scaling_is_monotone() {
        let art = generate_4a();
        let times: Vec<f64> = art.rows.iter().filter_map(|r| r[9].as_f64()).collect();
        assert!(times.len() >= 7, "most scales should be feasible");
        for w in times.windows(2) {
            assert!(w[1] < w[0], "{times:?}");
        }
    }

    #[test]
    fn gpt_compute_share_falls_at_scale() {
        // Paper: bubbles and communication slowly get exposed at scale.
        let art = generate_4a();
        let shares: Vec<f64> = art.rows.iter().filter_map(|r| r[10].as_f64()).collect();
        let mid = shares[shares.len() / 2];
        let last = *shares.last().unwrap();
        assert!(last < mid, "compute share should fall at 16K: {shares:?}");
    }

    #[test]
    fn gpt_memory_drops_at_scale() {
        // Paper Q2(iii): HBM utilization is high only at small-to-
        // moderate scales.
        let art = generate_4a();
        let mem: Vec<f64> = art.rows.iter().filter_map(|r| r[7].as_f64()).collect();
        assert!(mem.first().unwrap() > &100.0);
        assert!(mem.last().unwrap() < &100.0);
    }

    #[test]
    fn vit_always_uses_both_tp_dimensions() {
        // Paper Q2(iv): 2D TP with n1·n2 ≥ 16 dominates at every scale.
        let art = generate_4b();
        for r in art.rows.iter().filter(|r| !r[1].is_null()) {
            let n1 = r[1].as_u64().unwrap();
            let n2 = r[2].as_u64().unwrap();
            assert!(n1 >= 2 && n2 >= 2, "n1={n1} n2={n2}");
            assert!(n1 * n2 >= 16);
        }
    }

    #[test]
    fn vit_memory_stays_high() {
        // Paper: "HBM capacity is also highly utilized" for the ViT.
        let art = generate_4b();
        let mem: Vec<f64> = art.rows.iter().filter_map(|r| r[7].as_f64()).collect();
        assert!(!mem.is_empty());
        for m in &mem {
            assert!(*m > 100.0, "{mem:?}");
        }
    }

    #[test]
    fn vit_low_pp_throughout() {
        let art = generate_4b();
        for r in art.rows.iter().filter(|r| !r[3].is_null()) {
            assert!(r[3].as_u64().unwrap() <= 16, "ViT PP should stay small");
        }
    }
}
