//! Regenerates paper artifacts: `figures [all | <id>...] [--out DIR]`.
//!
//! Renders each artifact to stdout and writes `<id>.json` + `<id>.csv`
//! into the output directory (default `out/`).

use paperbench::{generate, ALL_IDS};
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("out");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        args.remove(pos);
        if pos < args.len() {
            out_dir = PathBuf::from(args.remove(pos));
        } else {
            eprintln!("--out requires a directory argument");
            std::process::exit(2);
        }
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [all | <id>...] [--out DIR]");
        eprintln!("known ids: {}", ALL_IDS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        let t0 = std::time::Instant::now();
        for art in generate(id) {
            println!("{}", art.render());
            if let Some(hm) = paperbench::common::grid_heatmap(&art) {
                println!("{hm}");
            }
            match art.write(&out_dir) {
                Ok((json, csv)) => {
                    eprintln!("wrote {} and {}", json.display(), csv.display())
                }
                Err(e) => {
                    eprintln!("failed to write {}: {e}", art.id);
                    std::process::exit(1);
                }
            }
        }
        eprintln!("[{id}] regenerated in {:.2?}\n", t0.elapsed());
    }
}
